// Tests of the sparse substrate: patterns, orderings, symbolic
// factorization and supernode construction.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "sparse/ordering.hpp"
#include "sparse/pattern.hpp"
#include "sparse/symbolic.hpp"

namespace gptc::sparse {
namespace {

TEST(Pattern, FromEdgesSymmetricDeduplicated) {
  const auto p = SparsityPattern::from_edges(
      4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 3}});
  EXPECT_EQ(p.size(), 4u);
  // {0,1},{1,2},{2,3} x2 directions; self-loop dropped; duplicate merged.
  EXPECT_EQ(p.num_nonzeros(), 6u);
  EXPECT_EQ(p.neighbors(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(p.neighbors(3), (std::vector<int>{2}));
}

TEST(Pattern, FromEdgesRejectsOutOfRange) {
  EXPECT_THROW(SparsityPattern::from_edges(2, {{0, 5}}),
               std::invalid_argument);
  EXPECT_THROW(SparsityPattern::from_edges(2, {{-1, 0}}),
               std::invalid_argument);
}

TEST(Pattern, Grid2dStructure) {
  const auto p = grid_2d(3, 3);
  EXPECT_EQ(p.size(), 9u);
  // Corner has 2 neighbors, edge 3, center 4.
  EXPECT_EQ(p.neighbors(0).size(), 2u);
  EXPECT_EQ(p.neighbors(1).size(), 3u);
  EXPECT_EQ(p.neighbors(4).size(), 4u);
  EXPECT_EQ(p.num_nonzeros(), 24u);  // 12 edges, both directions
}

TEST(Pattern, Grid3dStructure) {
  const auto p = grid_3d(3, 3, 3);
  EXPECT_EQ(p.size(), 27u);
  EXPECT_EQ(p.neighbors(13).size(), 6u);  // center of the cube
}

TEST(Pattern, ParsecLikeIsReproducibleAndReasonable) {
  const auto a = parsec_like(500, 15, 1.0, 7);
  const auto b = parsec_like(500, 15, 1.0, 7);
  const auto c = parsec_like(500, 15, 1.0, 8);
  EXPECT_EQ(a.num_nonzeros(), b.num_nonzeros());
  EXPECT_NE(a.num_nonzeros(), c.num_nonzeros());
  EXPECT_GT(a.average_degree(), 5.0);
  EXPECT_LT(a.average_degree(), 40.0);
}

TEST(Pattern, EvaluationMatricesHaveExpectedScale) {
  const auto si = si5h12_like();
  const auto h2o = h2o_like();
  EXPECT_EQ(si.size(), 1500u);
  EXPECT_EQ(h2o.size(), 2000u);
  EXPECT_GT(si.average_degree(), 8.0);
  EXPECT_GT(h2o.average_degree(), 8.0);
}

class OrderingTest : public ::testing::TestWithParam<const char*> {
 protected:
  Permutation order(const SparsityPattern& p) {
    return colperm_ordering(p, GetParam());
  }
};

TEST_P(OrderingTest, ProducesValidPermutation) {
  for (const auto& p :
       {grid_2d(7, 9), parsec_like(200, 10, 1.0, 1)}) {
    EXPECT_TRUE(is_permutation(order(p), p.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, OrderingTest,
                         ::testing::Values("NATURAL", "RCM_AT_PLUS_A",
                                           "MMD_AT_PLUS_A",
                                           "METIS_AT_PLUS_A"));

TEST(Ordering, UnknownNameThrows) {
  EXPECT_THROW(colperm_ordering(grid_2d(2, 2), "BOGUS"),
               std::invalid_argument);
}

TEST(Ordering, RcmReducesGridFillVsNatural) {
  const auto p = grid_2d(20, 20);
  const auto fill_nat = symbolic_factorize(p, natural_ordering(p)).fill();
  const auto fill_rcm = symbolic_factorize(p, rcm_ordering(p)).fill();
  EXPECT_LT(fill_rcm, fill_nat);
}

TEST(Ordering, MinimumDegreeBeatsBothOnGrids) {
  const auto p = grid_2d(20, 20);
  const auto fill_nat = symbolic_factorize(p, natural_ordering(p)).fill();
  const auto fill_md =
      symbolic_factorize(p, minimum_degree_ordering(p)).fill();
  EXPECT_LT(fill_md, fill_nat / 2);
}

TEST(Ordering, HandlesDisconnectedGraphs) {
  // Two disjoint paths.
  const auto p = SparsityPattern::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  EXPECT_TRUE(is_permutation(rcm_ordering(p), 6));
  EXPECT_TRUE(is_permutation(minimum_degree_ordering(p), 6));
}

TEST(Symbolic, TridiagonalHasNoFill) {
  // Chain graph = tridiagonal matrix: factor is bidiagonal, no fill.
  const auto p = SparsityPattern::from_edges(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto sym = symbolic_factorize(p, natural_ordering(p));
  ASSERT_EQ(sym.n(), 5u);
  for (std::size_t j = 0; j + 1 < 5; ++j) {
    EXPECT_EQ(sym.col_count[j], 2u);  // diagonal + one below
    EXPECT_EQ(sym.parent[j], static_cast<int>(j) + 1);
  }
  EXPECT_EQ(sym.col_count[4], 1u);
  EXPECT_EQ(sym.parent[4], -1);
  EXPECT_EQ(sym.fill(), 9u);
}

TEST(Symbolic, ArrowheadMatrixFillDependsOnOrdering) {
  // Star graph: hub first = dense factor; hub last = no fill. This is the
  // classic example of why ordering matters.
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < 8; ++i) edges.emplace_back(0, i);
  const auto p = SparsityPattern::from_edges(8, edges);

  // Hub eliminated first (natural): all 7 neighbors become a clique.
  const auto bad = symbolic_factorize(p, natural_ordering(p));
  // Hub last: leaves eliminate with a single below-diagonal entry.
  Permutation hub_last = {1, 2, 3, 4, 5, 6, 7, 0};
  const auto good = symbolic_factorize(p, hub_last);
  EXPECT_GT(bad.fill(), good.fill());
  EXPECT_EQ(good.fill(), 15u);  // 7 columns with 2 nnz + final with 1
  // Minimum degree must find the good elimination on its own.
  const auto md = symbolic_factorize(p, minimum_degree_ordering(p));
  EXPECT_EQ(md.fill(), 15u);
}

TEST(Symbolic, FillCountIsPermutationOfDenseCase) {
  // Complete graph: any ordering gives a fully dense factor.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j) edges.emplace_back(i, j);
  const auto p = SparsityPattern::from_edges(6, edges);
  const auto sym = symbolic_factorize(p, natural_ordering(p));
  EXPECT_EQ(sym.fill(), 21u);  // 6+5+4+3+2+1
  EXPECT_DOUBLE_EQ(sym.factor_flops(), 36 + 25 + 16 + 9 + 4 + 1);
}

TEST(Symbolic, InvalidPermutationThrows) {
  const auto p = grid_2d(3, 3);
  EXPECT_THROW(symbolic_factorize(p, {0, 1}), std::invalid_argument);
  EXPECT_THROW(symbolic_factorize(p, {0, 0, 1, 2, 3, 4, 5, 6, 7}),
               std::invalid_argument);
}

TEST(Symbolic, ParentsAreTopological) {
  const auto p = parsec_like(300, 10, 1.0, 3);
  const auto sym = symbolic_factorize(p, rcm_ordering(p));
  for (std::size_t j = 0; j < sym.n(); ++j) {
    if (sym.parent[j] >= 0) {
      EXPECT_GT(sym.parent[j], static_cast<int>(j));
    }
  }
}

TEST(Supernodes, PartitionCoversAllColumnsOnce) {
  const auto p = parsec_like(300, 10, 1.0, 4);
  const auto sym = symbolic_factorize(p, minimum_degree_ordering(p));
  const auto part = build_supernodes(sym, 16, 8);
  int covered = 0;
  int prev_end = 0;
  for (const auto& s : part.supernodes) {
    EXPECT_EQ(s.begin, prev_end);
    EXPECT_GT(s.end, s.begin);
    covered += s.width();
    prev_end = s.end;
  }
  EXPECT_EQ(covered, 300);
}

TEST(Supernodes, MaxWidthRespected) {
  const auto p = parsec_like(300, 10, 1.0, 4);
  const auto sym = symbolic_factorize(p, natural_ordering(p));
  for (int cap : {1, 4, 64}) {
    const auto part = build_supernodes(sym, cap, 10);
    for (const auto& s : part.supernodes) EXPECT_LE(s.width(), cap);
  }
}

TEST(Supernodes, WidthOneCapGivesOneSupernodePerColumn) {
  const auto p = grid_2d(6, 6);
  const auto sym = symbolic_factorize(p, natural_ordering(p));
  const auto part = build_supernodes(sym, 1, 1);
  EXPECT_EQ(part.count(), 36u);
  EXPECT_EQ(part.relax_fill, 0u);  // single columns have no padding
}

TEST(Supernodes, RelaxationMergesMoreAndAddsFill) {
  const auto p = parsec_like(400, 12, 1.0, 5);
  const auto sym = symbolic_factorize(p, minimum_degree_ordering(p));
  const auto tight = build_supernodes(sym, 32, 1);
  const auto relaxed = build_supernodes(sym, 32, 12);
  EXPECT_LT(relaxed.count(), tight.count());
  EXPECT_GE(relaxed.relax_fill, tight.relax_fill);
  EXPECT_GT(relaxed.average_width(), tight.average_width());
}

TEST(Supernodes, DenseFactorIsOneSupernode) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j) edges.emplace_back(i, j);
  const auto p = SparsityPattern::from_edges(6, edges);
  const auto sym = symbolic_factorize(p, natural_ordering(p));
  const auto part = build_supernodes(sym, 10, 1);
  EXPECT_EQ(part.count(), 1u);
  EXPECT_EQ(part.supernodes[0].rows, 6u);
  EXPECT_EQ(part.relax_fill, 0u);  // dense: union == each column's struct
}

TEST(Supernodes, InvalidKnobsThrow) {
  const auto p = grid_2d(3, 3);
  const auto sym = symbolic_factorize(p, natural_ordering(p));
  EXPECT_THROW(build_supernodes(sym, 0, 1), std::invalid_argument);
  EXPECT_THROW(build_supernodes(sym, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gptc::sparse
