#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/rng.hpp"

namespace gptc::la {
namespace {

Matrix random_spd(std::size_t n, rng::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix spd = matmul(a, a.transposed());
  spd.add_diagonal(static_cast<double>(n));  // well-conditioned
  return spd;
}

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, FromRowsAndRagged) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
}

TEST(Matrix, Transpose) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 5.0);
}

TEST(Matrix, AddDiagonalRequiresSquare) {
  Matrix m(2, 3);
  EXPECT_THROW(m.add_diagonal(1.0), std::invalid_argument);
}

TEST(Blas, MatvecKnownValues) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Vector y = matvec(a, {1, 1});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const Vector yt = matvec_t(a, {1, 1});
  EXPECT_DOUBLE_EQ(yt[0], 4.0);
  EXPECT_DOUBLE_EQ(yt[1], 6.0);
}

TEST(Blas, MatvecSizeMismatchThrows) {
  const Matrix a(2, 3);
  EXPECT_THROW(matvec(a, {1, 2}), std::invalid_argument);
  EXPECT_THROW(matvec_t(a, {1, 2, 3}), std::invalid_argument);
}

TEST(Blas, MatmulKnownValues) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Blas, GramEqualsAtA) {
  rng::Rng rng(1);
  Matrix a(5, 3);
  for (auto& v : a.data()) v = rng.normal();
  const Matrix g = gram(a);
  const Matrix ref = matmul(a.transposed(), a);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(g(i, j), ref(i, j), 1e-12);
}

TEST(Blas, DotNormSubtractAxpy) {
  const Vector a = {3, 4};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  const Vector d = subtract(a, {1, 1});
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  Vector y = {1, 1};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  EXPECT_THROW(dot(a, {1.0}), std::invalid_argument);
}

TEST(Cholesky, FactorsKnownMatrix) {
  // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]]
  const Cholesky chol(Matrix::from_rows({{4, 2}, {2, 3}}));
  EXPECT_NEAR(chol.lower()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol.lower()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol.lower()(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(chol.jitter_added(), 0.0);
}

TEST(Cholesky, SolveRoundTrip) {
  rng::Rng rng(2);
  const Matrix a = random_spd(20, rng);
  Vector x_true(20);
  for (auto& v : x_true) v = rng.normal();
  const Vector b = matvec(a, x_true);
  const Vector x = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, MatrixSolveRoundTrip) {
  rng::Rng rng(3);
  const Matrix a = random_spd(8, rng);
  Matrix b(8, 2);
  for (auto& v : b.data()) v = rng.normal();
  const Matrix x = Cholesky(a).solve(b);
  const Matrix ax = matmul(a, x);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(ax(i, j), b(i, j), 1e-8);
}

TEST(Cholesky, LogDetMatchesProductOfPivots) {
  const Matrix a = Matrix::from_rows({{4, 0}, {0, 9}});
  EXPECT_NEAR(Cholesky(a).log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, TriangularSolvesAreConsistent) {
  rng::Rng rng(4);
  const Matrix a = random_spd(10, rng);
  const Cholesky chol(a);
  Vector b(10);
  for (auto& v : b) v = rng.normal();
  const Vector y = chol.solve_lower(b);
  const Vector x = chol.solve_lower_t(y);
  const Vector x2 = chol.solve(b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(x[i], x2[i], 1e-12);
}

TEST(Cholesky, AddsJitterForSingularMatrix) {
  // Rank-1 matrix: needs jitter but must not throw.
  const Matrix a = Matrix::from_rows({{1, 1}, {1, 1}});
  const Cholesky chol(a);
  EXPECT_GT(chol.jitter_added(), 0.0);
}

TEST(Cholesky, ThrowsForIndefiniteMatrix) {
  const Matrix a = Matrix::from_rows({{1, 0}, {0, -5}});
  EXPECT_THROW(Cholesky(a, 1e-10, 2), std::runtime_error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(LeastSquares, ExactOnSquareSystem) {
  const Matrix a = Matrix::from_rows({{2, 0}, {0, 4}});
  const Vector x = least_squares(a, {2, 8});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedMatchesNormalEquations) {
  rng::Rng rng(5);
  Matrix a(30, 4);
  for (auto& v : a.data()) v = rng.normal();
  Vector b(30);
  for (auto& v : b) v = rng.normal();
  const Vector x_qr = least_squares(a, b);
  const Vector x_ridge = ridge_least_squares(a, b, 1e-12);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x_qr[i], x_ridge[i], 1e-6);
}

TEST(LeastSquares, RecoversExactFit) {
  rng::Rng rng(6);
  Matrix a(50, 3);
  for (auto& v : a.data()) v = rng.normal();
  const Vector truth = {1.5, -2.0, 0.25};
  const Vector b = matvec(a, truth);
  const Vector x = least_squares(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], truth[i], 1e-8);
}

TEST(LeastSquares, RankDeficientFallsBackGracefully) {
  // Two identical columns: QR would divide by ~0; must still return a
  // finite minimizer.
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
  }
  const Vector x = least_squares(a, {1, 2, 3, 4});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
  // Residual of the fitted solution should be ~0 (b is in the column span).
  Vector r = subtract(matvec(a, x), {1, 2, 3, 4});
  EXPECT_NEAR(norm2(r), 0.0, 1e-6);
}

TEST(Nnls, MatchesUnconstrainedWhenSolutionIsPositive) {
  const Matrix a = Matrix::from_rows({{1, 0}, {0, 1}, {1, 1}});
  const Vector b = {1.0, 2.0, 3.0};
  const Vector x = nonneg_least_squares(a, b);
  const Vector ref = least_squares(a, b);
  EXPECT_NEAR(x[0], ref[0], 1e-5);
  EXPECT_NEAR(x[1], ref[1], 1e-5);
}

TEST(Nnls, ClampsNegativeCoordinates) {
  // Unconstrained solution has a negative coefficient; NNLS must return 0.
  const Matrix a = Matrix::from_rows({{1, 1}, {0, 1}});
  const Vector b = {0.0, 1.0};  // unconstrained: x = (-1, 1)
  const Vector x = nonneg_least_squares(a, b);
  EXPECT_NEAR(x[0], 0.0, 1e-9);
  EXPECT_GT(x[1], 0.0);
}

TEST(Nnls, AllZeroWhenTargetNegativelyCorrelated) {
  const Matrix a = Matrix::from_rows({{1}, {1}});
  const Vector x = nonneg_least_squares(a, {-1.0, -2.0});
  EXPECT_NEAR(x[0], 0.0, 1e-12);
}

}  // namespace
}  // namespace gptc::la
