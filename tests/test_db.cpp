#include "db/document_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace gptc::db {
namespace {

using json::Json;

Json doc(const std::string& text) { return Json::parse(text); }

class CollectionTest : public ::testing::Test {
 protected:
  CollectionTest() : c_("samples") {
    c_.insert(doc(R"({"name":"a","value":1,"nested":{"x":10}})"));
    c_.insert(doc(R"({"name":"b","value":2,"nested":{"x":20}})"));
    c_.insert(doc(R"({"name":"c","value":3,"tags":["fast"]})"));
  }
  Collection c_;
};

TEST_F(CollectionTest, InsertAssignsSequentialIds) {
  EXPECT_EQ(c_.size(), 3u);
  EXPECT_EQ(c_.all()[0].at("_id").as_int(), 1);
  EXPECT_EQ(c_.all()[2].at("_id").as_int(), 3);
}

TEST_F(CollectionTest, InsertRejectsNonObject) {
  EXPECT_THROW(c_.insert(Json(5)), json::JsonError);
}

TEST_F(CollectionTest, EqualityMatch) {
  EXPECT_EQ(c_.find(doc(R"({"name":"b"})")).size(), 1u);
  EXPECT_EQ(c_.find(doc(R"({"name":"zz"})")).size(), 0u);
  EXPECT_EQ(c_.find(doc(R"({})")).size(), 3u);  // empty query matches all
}

TEST_F(CollectionTest, DotPathMatch) {
  const auto r = c_.find(doc(R"({"nested.x":20})"));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].at("name").as_string(), "b");
}

TEST_F(CollectionTest, RangeOperators) {
  EXPECT_EQ(c_.count(doc(R"({"value":{"$gte":2}})")), 2u);
  EXPECT_EQ(c_.count(doc(R"({"value":{"$gt":2}})")), 1u);
  EXPECT_EQ(c_.count(doc(R"({"value":{"$lt":2}})")), 1u);
  EXPECT_EQ(c_.count(doc(R"({"value":{"$lte":2}})")), 2u);
  EXPECT_EQ(c_.count(doc(R"({"value":{"$gte":1,"$lt":3}})")), 2u);
  EXPECT_EQ(c_.count(doc(R"({"value":{"$ne":2}})")), 2u);
}

TEST_F(CollectionTest, InNinExists) {
  EXPECT_EQ(c_.count(doc(R"({"name":{"$in":["a","c"]}})")), 2u);
  EXPECT_EQ(c_.count(doc(R"({"name":{"$nin":["a","c"]}})")), 1u);
  EXPECT_EQ(c_.count(doc(R"({"tags":{"$exists":true}})")), 1u);
  EXPECT_EQ(c_.count(doc(R"({"tags":{"$exists":false}})")), 2u);
}

TEST_F(CollectionTest, LogicalOperators) {
  EXPECT_EQ(
      c_.count(doc(R"({"$or":[{"name":"a"},{"value":{"$gte":3}}]})")), 2u);
  EXPECT_EQ(
      c_.count(doc(R"({"$and":[{"value":{"$gte":2}},{"value":{"$lt":3}}]})")),
      1u);
  EXPECT_EQ(c_.count(doc(R"({"$not":{"name":"a"}})")), 2u);
}

TEST_F(CollectionTest, StringOrderingOperators) {
  EXPECT_EQ(c_.count(doc(R"({"name":{"$gte":"b"}})")), 2u);
  // Mixed-type ordering comparisons never match.
  EXPECT_EQ(c_.count(doc(R"({"name":{"$gte":5}})")), 0u);
}

TEST_F(CollectionTest, UnknownOperatorThrows) {
  EXPECT_THROW(c_.count(doc(R"({"value":{"$regex":"x"}})")), json::JsonError);
}

TEST_F(CollectionTest, FindOneAndMissing) {
  EXPECT_EQ(c_.find_one(doc(R"({"value":3})")).at("name").as_string(), "c");
  EXPECT_TRUE(c_.find_one(doc(R"({"value":99})")).is_null());
}

TEST_F(CollectionTest, Remove) {
  EXPECT_EQ(c_.remove(doc(R"({"value":{"$lte":2}})")), 2u);
  EXPECT_EQ(c_.size(), 1u);
  EXPECT_EQ(c_.all()[0].at("name").as_string(), "c");
}

TEST_F(CollectionTest, UpdateOverwritesFieldsButNotId) {
  EXPECT_EQ(c_.update(doc(R"({"name":"a"})"),
                      doc(R"({"value":42,"_id":999})")),
            1u);
  const Json a = c_.find_one(doc(R"({"name":"a"})"));
  EXPECT_EQ(a.at("value").as_int(), 42);
  EXPECT_EQ(a.at("_id").as_int(), 1);
}

TEST_F(CollectionTest, NumericCrossTypeEqualityInQueries) {
  c_.insert(doc(R"({"name":"d","value":2.0})"));
  EXPECT_EQ(c_.count(doc(R"({"value":2})")), 2u);  // int 2 and double 2.0
}

TEST(LookupPath, Behaviour) {
  const Json d = doc(R"({"a":{"b":{"c":5}},"x":1})");
  ASSERT_NE(lookup_path(d, "a.b.c"), nullptr);
  EXPECT_EQ(lookup_path(d, "a.b.c")->as_int(), 5);
  EXPECT_EQ(lookup_path(d, "a.b.z"), nullptr);
  EXPECT_EQ(lookup_path(d, "x.y"), nullptr);  // x is not an object
  EXPECT_EQ(lookup_path(d, "x")->as_int(), 1);
}

TEST(DocumentStoreTest, CollectionsCreatedOnDemand) {
  DocumentStore store;
  EXPECT_EQ(store.find_collection("foo"), nullptr);
  store.collection("foo").insert(doc(R"({"k":1})"));
  ASSERT_NE(store.find_collection("foo"), nullptr);
  EXPECT_EQ(store.find_collection("foo")->size(), 1u);
  EXPECT_EQ(store.collection_names().size(), 1u);
}

TEST(DocumentStoreTest, SaveLoadRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gptc_store_test";
  std::filesystem::remove_all(dir);

  DocumentStore store;
  store.collection("func_eval").insert(doc(R"({"runtime":1.5,"mb":4})"));
  store.collection("func_eval").insert(doc(R"({"runtime":2.5,"mb":8})"));
  store.collection("users").insert(doc(R"({"username":"alice"})"));
  store.save(dir);

  const DocumentStore loaded = DocumentStore::load(dir);
  ASSERT_NE(loaded.find_collection("func_eval"), nullptr);
  EXPECT_EQ(loaded.find_collection("func_eval")->size(), 2u);
  EXPECT_EQ(loaded.find_collection("users")->size(), 1u);
  // Ids continue from where they left off.
  DocumentStore mutable_loaded = DocumentStore::load(dir);
  const auto id =
      mutable_loaded.collection("func_eval").insert(doc(R"({"runtime":9})"));
  EXPECT_EQ(id, 3);
  std::filesystem::remove_all(dir);
}

TEST(DocumentStoreTest, LoadMissingDirectoryGivesEmptyStore) {
  const DocumentStore s = DocumentStore::load("/nonexistent/gptc/path");
  EXPECT_TRUE(s.collection_names().empty());
}

TEST(CollectionJson, RoundTripPreservesNextId) {
  Collection c("t");
  c.insert(doc(R"({"a":1})"));
  c.remove(doc(R"({"a":1})"));
  Collection back = Collection::from_json(c.to_json());
  EXPECT_EQ(back.insert(doc(R"({"b":2})")), 2);  // id 1 was consumed
}

// ---------------------------------------------------------------------------
// Index-only count()/exists() fast paths: answers must be identical to the
// scan, whether the query is index-servable exactly, only narrowable, or
// not indexed at all.

class CountExistsParity : public ::testing::Test {
 protected:
  CountExistsParity() : indexed_("i"), plain_("p") {
    indexed_.create_index("k");
    indexed_.create_index("s");
    for (int i = 0; i < 20; ++i) {
      Json d = Json::object();
      d["k"] = static_cast<std::int64_t>(i % 5);
      d["s"] = "s" + std::to_string(i % 3);
      d["v"] = static_cast<std::int64_t>(i);
      Json d2 = d;
      indexed_.insert(std::move(d));
      plain_.insert(std::move(d2));
    }
  }

  void check(const std::string& query) {
    const Json q = doc(query);
    EXPECT_EQ(indexed_.count(q), plain_.count(q)) << query;
    EXPECT_EQ(indexed_.exists(q), plain_.exists(q)) << query;
    EXPECT_EQ(indexed_.count(q), indexed_.find(q).size()) << query;
    EXPECT_EQ(indexed_.exists(q), !indexed_.find(q).empty()) << query;
  }

  Collection indexed_;
  Collection plain_;
};

TEST_F(CountExistsParity, ExactlyIndexServableQueries) {
  // Single indexed field, single operator: served from the index without
  // touching a document.
  check(R"({"k":2})");
  check(R"({"k":99})");
  check(R"({"k":{"$eq":3}})");
  check(R"({"k":{"$gt":2}})");
  check(R"({"k":{"$gte":2}})");
  check(R"({"k":{"$lt":2}})");
  check(R"({"k":{"$lte":0}})");
  check(R"({"k":{"$in":[1,3,99]}})");
  check(R"({"k":{"$in":[]}})");
  check(R"({"s":"s1"})");
}

TEST_F(CountExistsParity, FallbackQueries) {
  // Not exactly servable: multi-operator, multi-field, negations,
  // unindexed paths, logical combinators — all must fall back to the
  // scan/candidate path and still agree.
  check(R"({})");
  check(R"({"k":{"$gte":1,"$lt":3}})");
  check(R"({"k":{"$ne":2}})");
  check(R"({"k":2,"s":"s1"})");
  check(R"({"v":{"$gte":10}})");
  check(R"({"$or":[{"k":1},{"s":"s2"}]})");
  check(R"({"$not":{"k":2}})");
  check(R"({"k":{"$exists":true}})");
}

TEST_F(CountExistsParity, ParityHoldsAfterMutations) {
  indexed_.remove(doc(R"({"k":2})"));
  plain_.remove(doc(R"({"k":2})"));
  indexed_.update(doc(R"({"k":3})"), doc(R"({"k":4})"));
  plain_.update(doc(R"({"k":3})"), doc(R"({"k":4})"));
  check(R"({"k":2})");
  check(R"({"k":3})");
  check(R"({"k":4})");
  check(R"({"k":{"$gte":3}})");
}

// ---------------------------------------------------------------------------
// Sharded in-memory collections: the split is invisible at the API.

TEST(ShardedCollection, QueriesMergeInInsertionOrder) {
  Collection sharded("t", 4);
  Collection flat("t");
  for (int i = 0; i < 17; ++i) {
    Json d = Json::object();
    d["k"] = static_cast<std::int64_t>(i % 4);
    Json d2 = d;
    sharded.insert(std::move(d));
    flat.insert(std::move(d2));
  }
  EXPECT_EQ(sharded.shard_count(), 4u);
  EXPECT_EQ(sharded.size(), flat.size());
  EXPECT_EQ(sharded.to_json().dump(), flat.to_json().dump());
  const Json q = doc(R"({"k":{"$gte":2}})");
  const auto a = sharded.find(q);
  const auto b = flat.find(q);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].dump(), b[i].dump());
  EXPECT_EQ(sharded.find_one(q).dump(), flat.find_one(q).dump());
  EXPECT_EQ(sharded.count(q), flat.count(q));
}

TEST(ShardedCollection, MutationsSpanShardsInvisibly) {
  Collection sharded("t", 4);
  Collection flat("t");
  for (Collection* c : {&sharded, &flat}) {
    for (int i = 0; i < 12; ++i) {
      Json d = Json::object();
      d["k"] = static_cast<std::int64_t>(i % 3);
      c->insert(std::move(d));
    }
    // Cross-shard update and remove behave exactly like the flat store.
    EXPECT_EQ(c->update(doc(R"({"k":1})"), doc(R"({"touched":true})")), 4u);
    EXPECT_EQ(c->remove(doc(R"({"k":2})")), 4u);
    // A batch whose documents hash across shards is still atomic and
    // contiguous in id space.
    const auto batch = c->insert_batch(
        {doc(R"({"k":9})"), doc(R"({"k":9})"), doc(R"({"k":9})")});
    EXPECT_EQ(batch.ids.size(), 3u);
    EXPECT_EQ(batch.ids[2], batch.ids[0] + 2);
  }
  EXPECT_EQ(sharded.to_json().dump(), flat.to_json().dump());
}

TEST(ShardedCollection, IndexedQueriesAgreeAcrossShardCounts) {
  Collection sharded("t", 3);
  Collection flat("t");
  sharded.create_index("k");
  flat.create_index("k");
  for (int i = 0; i < 15; ++i) {
    Json d = Json::object();
    d["k"] = static_cast<std::int64_t>(i % 5);
    Json d2 = d;
    sharded.insert(std::move(d));
    flat.insert(std::move(d2));
  }
  for (const char* query :
       {R"({"k":2})", R"({"k":{"$gte":3}})", R"({"k":{"$in":[0,4]}})"}) {
    const Json q = doc(query);
    const auto a = sharded.find(q);
    const auto b = flat.find(q);
    ASSERT_EQ(a.size(), b.size()) << query;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i].dump(), b[i].dump()) << query;
    EXPECT_EQ(sharded.count(q), flat.count(q)) << query;
    EXPECT_EQ(sharded.exists(q), flat.exists(q)) << query;
  }
}

}  // namespace
}  // namespace gptc::db
