// Behavioural tests of the ensemble TLA strategies (Algorithm 1 and its
// ablations): pool delegation, selection statistics, exploration decay.
#include <gtest/gtest.h>

#include <set>

#include "apps/synthetic.hpp"
#include "core/tuner.hpp"

namespace gptc::core {
namespace {

using space::Value;

class EnsembleTest : public ::testing::Test {
 protected:
  EnsembleTest() : problem_(apps::make_demo_problem()) {
    source_ = collect_random_samples(problem_, {Value(0.8)}, 80, 5);
  }

  TunerOptions options(TlaKind kind, std::uint64_t seed, int budget) const {
    TunerOptions o;
    o.budget = budget;
    o.algorithm = kind;
    o.seed = seed;
    o.tla.gp.fit_restarts = 1;
    o.tla.gp.fit_evaluations = 50;
    o.tla.lcm.fit_restarts = 0;
    o.tla.lcm.fit_evaluations = 60;
    o.tla.lcm.max_samples_per_task = 30;
    o.tla.max_source_samples = 40;
    o.tla.acquisition.de_population = 12;
    o.tla.acquisition.de_generations = 10;
    return o;
  }

  space::TuningProblem problem_;
  TaskHistory source_;
};

TEST_F(EnsembleTest, ProposedByReportsPoolMembers) {
  const TuningResult r =
      Tuner(problem_, options(TlaKind::EnsembleProposed, 1, 10))
          .tune({Value(1.0)}, {source_});
  ASSERT_EQ(r.proposed_by.size(), 10u);
  // Evaluation 1 is the shared WeightedSum(equal) rule; later evaluations
  // must name actual pool members (Algorithm 1, line 1).
  EXPECT_EQ(r.proposed_by[0], "WeightedSum(equal)");
  const std::set<std::string> pool = {"Multitask(TS)", "WeightedSum(dynamic)",
                                      "Stacking"};
  for (std::size_t i = 1; i < r.proposed_by.size(); ++i)
    EXPECT_TRUE(pool.count(r.proposed_by[i]))
        << "unexpected proposer: " << r.proposed_by[i];
}

TEST_F(EnsembleTest, ProposedUsesMultipleMembersOverARun) {
  // With the exploration rate of Eq. 4 high at small sample counts, a
  // 12-evaluation run should try more than one pool member.
  const TuningResult r =
      Tuner(problem_, options(TlaKind::EnsembleProposed, 3, 12))
          .tune({Value(1.0)}, {source_});
  std::set<std::string> used(r.proposed_by.begin() + 1, r.proposed_by.end());
  EXPECT_GE(used.size(), 2u);
}

TEST_F(EnsembleTest, TogglingCyclesDeterministically) {
  const TuningResult r =
      Tuner(problem_, options(TlaKind::EnsembleToggling, 4, 7))
          .tune({Value(1.0)}, {source_});
  // After the first (WeightedSum(equal)) evaluation, toggling walks the
  // pool round-robin.
  ASSERT_GE(r.proposed_by.size(), 7u);
  EXPECT_EQ(r.proposed_by[1], "Multitask(TS)");
  EXPECT_EQ(r.proposed_by[2], "WeightedSum(dynamic)");
  EXPECT_EQ(r.proposed_by[3], "Stacking");
  EXPECT_EQ(r.proposed_by[4], "Multitask(TS)");
}

TEST_F(EnsembleTest, AllEnsembleVariantsProduceFiniteResults) {
  for (const TlaKind kind :
       {TlaKind::EnsembleProposed, TlaKind::EnsembleToggling,
        TlaKind::EnsembleProb}) {
    const TuningResult r = Tuner(problem_, options(kind, 6, 6))
                               .tune({Value(1.0)}, {source_});
    ASSERT_TRUE(r.best_output().has_value()) << to_string(kind);
    EXPECT_TRUE(std::isfinite(*r.best_output())) << to_string(kind);
  }
}

TEST_F(EnsembleTest, EnsembleSurvivesNegativeOutputs) {
  // Eq. 3 weights use 1/best_output assuming non-negative objectives; with
  // negative outputs the implementation must fall back to uniform choice
  // rather than crash (demo function can dip below zero for some tasks).
  space::TuningProblem shifted = problem_;
  shifted.objective = [base = problem_.objective](const space::Config& t,
                                                  const space::Config& p) {
    return base(t, p) - 2.0;  // strictly negative outputs
  };
  TaskHistory shifted_source({Value(0.8)});
  for (const auto& e : source_.evals())
    shifted_source.add(e.params, e.output - 2.0);
  const TuningResult r =
      Tuner(shifted, options(TlaKind::EnsembleProposed, 7, 8))
          .tune({Value(1.0)}, {shifted_source});
  ASSERT_TRUE(r.best_output().has_value());
  EXPECT_LT(*r.best_output(), 0.0);
}

}  // namespace
}  // namespace gptc::core
