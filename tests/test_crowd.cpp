// Tests for the crowd layer: environment parsing, meta descriptions, the
// shared repository (users, API keys, access control, tag normalization,
// queries) and the analytics utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "crowd/envparse.hpp"
#include "crowd/meta.hpp"
#include "crowd/repo.hpp"

namespace gptc::crowd {
namespace {

using json::Json;
using space::Parameter;
using space::Space;
using space::Value;

// ---------------------------------------------------------------------------
// Environment parsing

TEST(Versions, ParseVersion) {
  EXPECT_EQ(parse_version("9.3.0"), (std::vector<int>{9, 3, 0}));
  EXPECT_EQ(parse_version("7"), (std::vector<int>{7}));
  EXPECT_EQ(parse_version("3.11.2-rc1"), (std::vector<int>{3, 11, 2}));
  EXPECT_TRUE(parse_version("abc").empty());
}

TEST(Versions, CompareAndRange) {
  EXPECT_LT(compare_versions({8, 0, 0}, {9}), 0);
  EXPECT_EQ(compare_versions({9, 0}, {9, 0, 0}), 0);
  EXPECT_GT(compare_versions({9, 0, 1}, {9}), 0);
  EXPECT_TRUE(version_in_range({8, 5}, {8, 0, 0}, {9, 0, 0}));
  EXPECT_FALSE(version_in_range({9, 1}, {8, 0, 0}, {9, 0, 0}));
  EXPECT_TRUE(version_in_range({1}, {}, {}));  // unconstrained
}

TEST(Spack, ParsesFullSpec) {
  const auto spec = parse_spack_spec(
      "superlu-dist@7.2.0%gcc@9.3.0+openmp~cuda arch=cray-cnl7-haswell");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->name, "superlu-dist");
  EXPECT_EQ(spec->version, (std::vector<int>{7, 2, 0}));
  EXPECT_EQ(spec->compiler, "gcc");
  EXPECT_EQ(spec->compiler_version, (std::vector<int>{9, 3, 0}));
  ASSERT_EQ(spec->variants.size(), 2u);
  EXPECT_EQ(spec->variants[0], "+openmp");
  EXPECT_EQ(spec->variants[1], "~cuda");
  EXPECT_EQ(spec->arch, "cray-cnl7-haswell");
}

TEST(Spack, MinimalAndInvalidSpecs) {
  const auto spec = parse_spack_spec("scalapack@2.1.0");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->name, "scalapack");
  EXPECT_TRUE(spec->compiler.empty());
  EXPECT_FALSE(parse_spack_spec("").has_value());
  EXPECT_FALSE(parse_spack_spec("# a comment").has_value());
  EXPECT_FALSE(parse_spack_spec("   ").has_value());
}

TEST(Spack, ManifestCollectsSoftwareAndCompilers) {
  const Json sw = parse_spack_manifest(R"(# spack find output
scalapack@2.1.0%gcc@9.3.0
superlu-dist@7.2.0%gcc@9.3.0+openmp

hypre@2.24.0%gcc@9.3.0
)");
  EXPECT_TRUE(sw.contains("scalapack"));
  EXPECT_TRUE(sw.contains("superlu-dist"));
  EXPECT_TRUE(sw.contains("hypre"));
  EXPECT_TRUE(sw.contains("gcc"));  // compiler recorded as software too
  EXPECT_EQ(sw.at("superlu-dist").at("version").at(std::size_t{0}).as_int(), 7);
  EXPECT_EQ(sw.at("gcc").at("version").at(std::size_t{1}).as_int(), 3);
}

TEST(Slurm, ParsesEnvironment) {
  const Json mc = parse_slurm_env({
      {"SLURM_CLUSTER_NAME", "cori"},
      {"SLURM_JOB_PARTITION", "haswell"},
      {"SLURM_JOB_NUM_NODES", "8"},
      {"SLURM_CPUS_ON_NODE", "32"},
      {"SLURM_JOB_ID", "123456"},
  });
  EXPECT_EQ(mc.at("machine_name").as_string(), "cori");
  EXPECT_EQ(mc.at("partition").as_string(), "haswell");
  EXPECT_EQ(mc.at("nodes").as_int(), 8);
  EXPECT_EQ(mc.at("cores").as_int(), 32);
  EXPECT_EQ(mc.at("scheduler").as_string(), "slurm");
}

TEST(Slurm, MissingKeysAreOmitted) {
  const Json mc = parse_slurm_env({{"SLURM_JOB_NUM_NODES", "4"}});
  EXPECT_FALSE(mc.contains("machine_name"));
  EXPECT_EQ(mc.at("nodes").as_int(), 4);
}

// ---------------------------------------------------------------------------
// Meta description

TEST(Meta, ParsesPaperExample) {
  // The meta description from Sec. IV-A of the paper (normalized JSON).
  const Json j = Json::parse(R"({
    "api_key": "k",
    "tuning_problem_name": "my_example",
    "problem_space": {
      "input_space": [
        {"name":"t","type":"integer","lower_bound":1,"upper_bound":10}
      ],
      "parameter_space": [
        {"name":"x","type":"real","lower_bound":0,"upper_bound":10}
      ],
      "output_space": [{"name":"y","type":"real"}]
    },
    "configuration_space": {
      "machine_configurations": [
        {"Cori": {"haswell": {"nodes": 1, "cores": 32}}}
      ],
      "software_configurations": [
        {"gcc": {"version_from": [8,0,0], "version_to": [9,0,0]}}
      ],
      "user_configurations": ["user_A", "user_B"]
    },
    "machine_configuration": {"machine_name": "Cori", "slurm": "yes"},
    "software_configuration": {"spack": "ScaLAPACK"},
    "sync_crowd_repo": "yes"
  })");
  const MetaDescription m = MetaDescription::from_json(j);
  EXPECT_EQ(m.tuning_problem_name, "my_example");
  EXPECT_EQ(m.input_space.dim(), 1u);
  EXPECT_EQ(m.parameter_space.dim(), 1u);
  EXPECT_EQ(m.output_name, "y");
  ASSERT_EQ(m.machine_filters.size(), 1u);
  EXPECT_EQ(m.machine_filters[0].machine_name, "Cori");
  EXPECT_EQ(m.machine_filters[0].partition, "haswell");
  EXPECT_EQ(m.machine_filters[0].nodes_min.value(), 1);
  EXPECT_EQ(m.machine_filters[0].cores_max.value(), 32);
  ASSERT_EQ(m.software_filters.size(), 1u);
  EXPECT_EQ(m.software_filters[0].name, "gcc");
  EXPECT_EQ(m.software_filters[0].version_from, (std::vector<int>{8, 0, 0}));
  ASSERT_EQ(m.user_filters.size(), 2u);
  EXPECT_TRUE(m.sync_crowd_repo);
}

TEST(Meta, RoundTripThroughJson) {
  MetaDescription m;
  m.api_key = "key";
  m.tuning_problem_name = "p";
  m.parameter_space = Space({Parameter::integer("mb", 1, 16)});
  MachineFilter f;
  f.machine_name = "Cori";
  f.partition = "knl";
  f.nodes_min = 32;
  f.nodes_max = 64;
  m.machine_filters.push_back(f);
  SoftwareFilter sf;
  sf.name = "cray-mpich";
  sf.version_from = {7, 7, 10};
  m.software_filters.push_back(sf);
  m.user_filters = {"alice"};
  const MetaDescription back = MetaDescription::from_json(m.to_json());
  EXPECT_EQ(back.tuning_problem_name, "p");
  ASSERT_EQ(back.machine_filters.size(), 1u);
  EXPECT_EQ(back.machine_filters[0].nodes_max.value(), 64);
  ASSERT_EQ(back.software_filters.size(), 1u);
  EXPECT_EQ(back.software_filters[0].version_from,
            (std::vector<int>{7, 7, 10}));
  EXPECT_EQ(back.user_filters[0], "alice");
}

// ---------------------------------------------------------------------------
// SharedRepo

class RepoTest : public ::testing::Test {
 protected:
  RepoTest() : repo_(7) {
    alice_key_ = repo_.register_user("alice", "alice@lab.gov");
    bob_key_ = repo_.register_user("bob", "bob@uni.edu");
  }

  EvalUpload make_upload(double mb, double runtime,
                         const std::string& machine = "Cori",
                         const std::string& partition = "haswell",
                         int nodes = 8) {
    EvalUpload e;
    e.task_parameters = Json::parse(R"({"m":10000,"n":10000})");
    Json tuning = Json::object();
    tuning["mb"] = static_cast<std::int64_t>(mb);
    e.tuning_parameters = std::move(tuning);
    e.output = runtime;
    Json mc = Json::object();
    mc["machine_name"] = machine;
    mc["partition"] = partition;
    mc["nodes"] = std::int64_t{nodes};
    mc["cores"] = std::int64_t{32};
    e.machine_configuration = std::move(mc);
    e.software_configuration =
        parse_spack_manifest("scalapack@2.1.0%gcc@8.3.0");
    return e;
  }

  MetaDescription base_meta(const std::string& key) {
    MetaDescription m;
    m.api_key = key;
    m.tuning_problem_name = "pdgeqrf";
    m.input_space = Space({Parameter::integer("m", 1000, 20000),
                           Parameter::integer("n", 1000, 20000)});
    m.parameter_space = Space({Parameter::integer("mb", 1, 16)});
    return m;
  }

  SharedRepo repo_;
  std::string alice_key_, bob_key_;
};

TEST_F(RepoTest, RegisterAndAuthenticate) {
  EXPECT_EQ(repo_.num_users(), 2u);
  EXPECT_EQ(repo_.authenticate(alice_key_).value(), "alice");
  EXPECT_EQ(repo_.authenticate(bob_key_).value(), "bob");
  EXPECT_FALSE(repo_.authenticate("bogus").has_value());
  EXPECT_THROW(repo_.register_user("alice", "dup@x.y"), std::invalid_argument);
}

TEST_F(RepoTest, ApiKeysAre20CharsAndUnique) {
  EXPECT_EQ(alice_key_.size(), 20u);
  EXPECT_NE(alice_key_, bob_key_);
  const std::string second = repo_.issue_api_key("alice");
  EXPECT_NE(second, alice_key_);
  EXPECT_EQ(repo_.authenticate(second).value(), "alice");
  EXPECT_THROW(repo_.issue_api_key("nobody"), std::invalid_argument);
}

TEST_F(RepoTest, RevokedKeyStopsWorking) {
  EXPECT_TRUE(repo_.revoke_api_key(alice_key_));
  EXPECT_FALSE(repo_.authenticate(alice_key_).has_value());
  EXPECT_FALSE(repo_.revoke_api_key(alice_key_));  // already revoked
}

TEST_F(RepoTest, PlaintextKeysAreNotStored) {
  // No stored document may contain the plaintext API key.
  for (const auto& name : repo_.store().collection_names()) {
    for (const auto& d : repo_.store().find_collection(name)->all()) {
      EXPECT_EQ(d.dump().find(alice_key_), std::string::npos)
          << "plaintext key leaked into collection " << name;
    }
  }
}

TEST_F(RepoTest, TagNormalization) {
  EXPECT_EQ(repo_.normalize_machine("cori"), "Cori");
  EXPECT_EQ(repo_.normalize_machine("CORI"), "Cori");
  EXPECT_EQ(repo_.normalize_software("ScaLAPACK"), "scalapack");
  EXPECT_EQ(repo_.normalize_software("CrayMPICH"), "cray-mpich");
  EXPECT_EQ(repo_.normalize_machine("unknown-cluster"), "unknown-cluster");
}

TEST_F(RepoTest, UploadNormalizesTags) {
  repo_.upload(alice_key_, "pdgeqrf", make_upload(4, 1.0, "cori"));
  const auto records =
      repo_.query_function_evaluations(base_meta(alice_key_));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0]
                .at("machine_configuration")
                .at("machine_name")
                .as_string(),
            "Cori");
  EXPECT_TRUE(records[0].at("software_configuration").contains("scalapack"));
}

TEST_F(RepoTest, UploadRequiresValidKey) {
  EXPECT_THROW(repo_.upload("bad-key", "p", make_upload(4, 1.0)),
               std::invalid_argument);
}

TEST_F(RepoTest, QueryFiltersByProblemAndRanges) {
  repo_.upload(alice_key_, "pdgeqrf", make_upload(4, 1.0));
  repo_.upload(alice_key_, "other_problem", make_upload(5, 2.0));
  EvalUpload out_of_range = make_upload(4, 1.0);
  out_of_range.task_parameters = Json::parse(R"({"m":500,"n":500})");
  repo_.upload(alice_key_, "pdgeqrf", out_of_range);

  const auto records =
      repo_.query_function_evaluations(base_meta(alice_key_));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("tuning_parameters").at("mb").as_int(), 4);
  EXPECT_EQ(repo_.num_records("pdgeqrf"), 2u);
}

TEST_F(RepoTest, MachineFiltersRestrictResults) {
  repo_.upload(alice_key_, "pdgeqrf", make_upload(4, 1.0, "Cori", "haswell", 8));
  repo_.upload(alice_key_, "pdgeqrf", make_upload(5, 2.0, "Cori", "knl", 32));
  repo_.upload(alice_key_, "pdgeqrf", make_upload(6, 3.0, "Summit", "gpu", 8));

  MetaDescription m = base_meta(alice_key_);
  MachineFilter f;
  f.machine_name = "cori";  // alias form
  f.partition = "haswell";
  m.machine_filters.push_back(f);
  auto records = repo_.query_function_evaluations(m);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("tuning_parameters").at("mb").as_int(), 4);

  // Node range [16, 64] picks the KNL record.
  m.machine_filters.clear();
  MachineFilter g;
  g.machine_name = "Cori";
  g.nodes_min = 16;
  g.nodes_max = 64;
  m.machine_filters.push_back(g);
  records = repo_.query_function_evaluations(m);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("tuning_parameters").at("mb").as_int(), 5);
}

TEST_F(RepoTest, SoftwareVersionFilter) {
  repo_.upload(alice_key_, "pdgeqrf", make_upload(4, 1.0));  // gcc 8.3.0
  EvalUpload newer = make_upload(5, 2.0);
  newer.software_configuration =
      parse_spack_manifest("scalapack@2.1.0%gcc@10.1.0");
  repo_.upload(alice_key_, "pdgeqrf", newer);

  MetaDescription m = base_meta(alice_key_);
  SoftwareFilter f;
  f.name = "GCC";  // alias capitalization
  f.version_from = {8, 0, 0};
  f.version_to = {9, 0, 0};
  m.software_filters.push_back(f);
  const auto records = repo_.query_function_evaluations(m);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("tuning_parameters").at("mb").as_int(), 4);
}

TEST_F(RepoTest, UserFilterTrustsSpecificUploaders) {
  repo_.upload(alice_key_, "pdgeqrf", make_upload(4, 1.0));
  repo_.upload(bob_key_, "pdgeqrf", make_upload(5, 2.0));
  MetaDescription m = base_meta(alice_key_);
  m.user_filters = {"bob"};
  const auto records = repo_.query_function_evaluations(m);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("user").as_string(), "bob");
}

TEST_F(RepoTest, AccessControlPrivateAndShared) {
  EvalUpload priv = make_upload(4, 1.0);
  priv.accessibility.level = Accessibility::Level::Private;
  repo_.upload(alice_key_, "pdgeqrf", priv);

  EvalUpload shared = make_upload(5, 2.0);
  shared.accessibility.level = Accessibility::Level::Shared;
  shared.accessibility.shared_with = {"bob"};
  repo_.upload(alice_key_, "pdgeqrf", shared);

  repo_.upload(alice_key_, "pdgeqrf", make_upload(6, 3.0));  // public

  // Alice (owner) sees all three; Bob sees shared + public.
  EXPECT_EQ(repo_.query_function_evaluations(base_meta(alice_key_)).size(),
            3u);
  const auto bob_view = repo_.query_function_evaluations(base_meta(bob_key_));
  ASSERT_EQ(bob_view.size(), 2u);
  // A third user sees only the public record.
  const std::string carol_key = repo_.register_user("carol", "c@x.y");
  EXPECT_EQ(repo_.query_function_evaluations(base_meta(carol_key)).size(),
            1u);
}

TEST_F(RepoTest, FailedRunsStoredAsNullOutput) {
  repo_.upload(alice_key_, "pdgeqrf",
               make_upload(4, std::numeric_limits<double>::quiet_NaN()));
  const auto records =
      repo_.query_function_evaluations(base_meta(alice_key_));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].at("output").at("runtime").is_null());
}

TEST_F(RepoTest, SurrogateAndPredictionUtilities) {
  // Upload samples of a simple function runtime(mb) = (mb-8)^2 + 1.
  for (int mb = 1; mb < 16; ++mb)
    repo_.upload(alice_key_, "pdgeqrf",
                 make_upload(mb, (mb - 8.0) * (mb - 8.0) + 1.0));
  const MetaDescription m = base_meta(alice_key_);
  const auto model = repo_.query_surrogate_model(m, /*seed=*/1);
  ASSERT_NE(model, nullptr);
  const double at8 = repo_.query_predict_output(
      m, {Value(std::int64_t{8})}, /*seed=*/1);
  const double at1 = repo_.query_predict_output(
      m, {Value(std::int64_t{1})}, /*seed=*/1);
  EXPECT_LT(at8, at1);  // surrogate learned the valley at mb=8
}

TEST_F(RepoTest, SurrogateNeedsEnoughData) {
  repo_.upload(alice_key_, "pdgeqrf", make_upload(4, 1.0));
  EXPECT_THROW(repo_.query_surrogate_model(base_meta(alice_key_)),
               std::runtime_error);
}

TEST_F(RepoTest, SensitivityAnalysisRunsOnCrowdData) {
  rng::Rng noise(1);
  for (int i = 0; i < 40; ++i) {
    const int mb = 1 + i % 15;
    repo_.upload(alice_key_, "pdgeqrf",
                 make_upload(mb, (mb - 8.0) * (mb - 8.0) + 1.0));
  }
  sa::SobolOptions opt;
  opt.base_samples = 128;
  const sa::SobolResult r =
      repo_.query_sensitivity_analysis(base_meta(alice_key_), 2, opt);
  ASSERT_EQ(r.dim(), 1u);
  EXPECT_EQ(r.names[0], "mb");
  EXPECT_GT(r.st[0], 0.5);  // the only parameter carries all the variance
}

TEST_F(RepoTest, SourceHistoriesGroupByTask) {
  for (int i = 0; i < 5; ++i)
    repo_.upload(alice_key_, "pdgeqrf", make_upload(1 + i, 1.0 + i));
  EvalUpload other_task = make_upload(3, 9.0);
  other_task.task_parameters = Json::parse(R"({"m":8000,"n":8000})");
  repo_.upload(alice_key_, "pdgeqrf", other_task);

  const auto histories =
      repo_.query_source_histories(base_meta(alice_key_));
  ASSERT_EQ(histories.size(), 2u);
  // Ordered by descending sample count.
  EXPECT_EQ(histories[0].size(), 5u);
  EXPECT_EQ(histories[1].size(), 1u);
  EXPECT_EQ(histories[0].task()[0].as_int(), 10000);
  EXPECT_EQ(histories[1].task()[0].as_int(), 8000);
}

TEST_F(RepoTest, SaveLoadRoundTrip) {
  repo_.upload(alice_key_, "pdgeqrf", make_upload(4, 1.0));
  const auto dir = std::filesystem::temp_directory_path() / "gptc_repo_test";
  std::filesystem::remove_all(dir);
  repo_.save(dir);
  const SharedRepo loaded = SharedRepo::load(dir);
  EXPECT_EQ(loaded.num_users(), 2u);
  EXPECT_EQ(loaded.authenticate(alice_key_).value(), "alice");
  EXPECT_EQ(loaded.num_records("pdgeqrf"), 1u);
  std::filesystem::remove_all(dir);
}

TEST_F(RepoTest, QueryRequiresValidKey) {
  MetaDescription m = base_meta("not-a-key");
  EXPECT_THROW(repo_.query_function_evaluations(m), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Durable mode (src/db/engine storage engine)

/// Scratch repo directory removed on scope exit.
struct RepoDir {
  std::filesystem::path path;
  explicit RepoDir(const char* name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~RepoDir() { std::filesystem::remove_all(path); }
};

TEST(SharedRepoDurable, ReopenRecoversUsersKeysAndRecords) {
  RepoDir dir("gptc_repo_durable");
  std::string key;
  {
    SharedRepo repo = SharedRepo::open_durable(dir.path);
    key = repo.register_user("alice", "alice@lab.gov");
    EvalUpload e;
    e.task_parameters = Json::parse(R"({"m":10000,"n":10000})");
    e.tuning_parameters = Json::parse(R"({"mb":4})");
    e.output = 1.5;
    repo.upload(key, "pdgeqrf", e);
    repo.sync();
  }
  // On-disk state is WAL/snapshot, not the diffable export.
  EXPECT_TRUE(std::filesystem::exists(dir.path / "api_keys.wal") ||
              std::filesystem::exists(dir.path / "api_keys.snapshot"));
  SharedRepo repo = SharedRepo::open_durable(dir.path);
  EXPECT_EQ(repo.num_users(), 1u);
  EXPECT_EQ(repo.authenticate(key).value(), "alice");
  EXPECT_EQ(repo.num_records("pdgeqrf"), 1u);
  EXPECT_TRUE(repo.store().find_collection("func_eval")->has_index("problem"));
}

TEST(SharedRepoDurable, MigratesLegacySaveDirectory) {
  RepoDir dir("gptc_repo_durable_migrate");
  std::string key;
  {
    SharedRepo legacy(7);
    key = legacy.register_user("alice", "alice@lab.gov");
    EvalUpload e;
    e.task_parameters = Json::parse(R"({"m":10000})");
    e.tuning_parameters = Json::parse(R"({"mb":8})");
    e.output = 2.0;
    legacy.upload(key, "pdgeqrf", e);
    legacy.save(dir.path);
  }
  SharedRepo repo = SharedRepo::open_durable(dir.path);
  EXPECT_EQ(repo.authenticate(key).value(), "alice");
  EXPECT_EQ(repo.num_records("pdgeqrf"), 1u);
  // Migration checkpoints immediately: the engine owns the state now.
  EXPECT_TRUE(std::filesystem::exists(dir.path / "func_eval.snapshot"));
}

TEST(SharedRepoDurable, LegacyFnvHashedKeysStillAuthenticate) {
  // A repo directory written by an older build stores
  // key_hash = std::to_string(rng::hash_tag(key)) with no hash_version.
  RepoDir dir("gptc_repo_legacy_hash");
  const std::string old_key = "legacy-api-key-00001";
  {
    db::DocumentStore store;
    Json user = Json::object();
    user["username"] = "veteran";
    user["email"] = "veteran@lab.gov";
    store.collection("users").insert(std::move(user));
    Json doc = Json::object();
    doc["username"] = "veteran";
    doc["key_hash"] = std::to_string(rng::hash_tag(old_key));
    doc["revoked"] = false;
    store.collection("api_keys").insert(std::move(doc));
    store.export_json(dir.path);
  }
  SharedRepo repo = SharedRepo::open_durable(dir.path);
  EXPECT_EQ(repo.authenticate(old_key).value(), "veteran");
  // New keys issued alongside use the current salted format, and revoking
  // the legacy key goes through the same versioned verification.
  const std::string fresh = repo.issue_api_key("veteran");
  EXPECT_EQ(repo.authenticate(fresh).value(), "veteran");
  EXPECT_TRUE(repo.revoke_api_key(old_key));
  EXPECT_FALSE(repo.authenticate(old_key).has_value());
  EXPECT_EQ(repo.authenticate(fresh).value(), "veteran");
}

TEST_F(RepoTest, QueriesByteIdenticalWithIndexesOn) {
  // Replay the same uploads into a second repo with the same seed, then
  // declare the default indexes only on the copy: every query must return
  // byte-identical results — the planner changes candidate discovery, not
  // semantics or ordering.
  SharedRepo indexed(7);
  const std::string a2 = indexed.register_user("alice", "alice@lab.gov");
  const std::string b2 = indexed.register_user("bob", "bob@uni.edu");
  for (int i = 0; i < 12; ++i) {
    const auto e = make_upload(1 + i % 8, 1.0 + i,
                               i % 3 == 0 ? "Cori" : "Summit", "haswell",
                               8 * (1 + i % 2));
    repo_.upload(i % 2 == 0 ? alice_key_ : bob_key_, "pdgeqrf", e);
    indexed.upload(i % 2 == 0 ? a2 : b2, "pdgeqrf", e);
  }
  indexed.declare_default_indexes();
  indexed.declare_task_parameter_index("m");

  MetaDescription m1 = base_meta(alice_key_);
  MetaDescription m2 = base_meta(a2);
  const auto r1 = repo_.query_function_evaluations(m1);
  const auto r2 = indexed.query_function_evaluations(m2);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i)
    EXPECT_EQ(r1[i].dump(), r2[i].dump());

  const char* where =
      "tuning_parameters.mb >= 3 AND "
      "machine_configuration.machine_name = 'Cori'";
  const auto w1 = repo_.query_where(alice_key_, "pdgeqrf", where);
  const auto w2 = indexed.query_where(a2, "pdgeqrf", where);
  ASSERT_EQ(w1.size(), w2.size());
  for (std::size_t i = 0; i < w1.size(); ++i)
    EXPECT_EQ(w1[i].dump(), w2[i].dump());
}

}  // namespace
}  // namespace gptc::crowd
