// Tests of GPTune-style simultaneous multitask tuning (Tuner::tune_multitask).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/synthetic.hpp"
#include "core/tuner.hpp"

namespace gptc::core {
namespace {

using space::Value;

class MultitaskTuningTest : public ::testing::Test {
 protected:
  MultitaskTuningTest() : problem_(apps::make_demo_problem()) {}

  TunerOptions options(std::uint64_t seed, int budget) const {
    TunerOptions o;
    o.budget = budget;
    o.seed = seed;
    o.tla.gp.fit_restarts = 1;
    o.tla.gp.fit_evaluations = 50;
    o.tla.lcm.fit_restarts = 0;
    o.tla.lcm.fit_evaluations = 70;
    o.tla.lcm.max_samples_per_task = 30;
    o.tla.acquisition.de_population = 12;
    o.tla.acquisition.de_generations = 10;
    return o;
  }

  space::TuningProblem problem_;
};

TEST_F(MultitaskTuningTest, TunesEveryTaskWithFullBudget) {
  const std::vector<space::Config> tasks = {{Value(0.9)}, {Value(1.0)},
                                            {Value(1.1)}};
  const auto results =
      Tuner(problem_, options(1, 6)).tune_multitask(tasks);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(results[t].history.size(), 6u);
    EXPECT_EQ(results[t].history.task()[0].as_double(),
              tasks[t][0].as_double());
    ASSERT_TRUE(results[t].best_output().has_value());
    EXPECT_TRUE(std::isfinite(*results[t].best_output()));
    for (const auto& name : results[t].proposed_by)
      EXPECT_EQ(name, "Multitask(LCM)");
  }
}

TEST_F(MultitaskTuningTest, DeterministicPerSeed) {
  const std::vector<space::Config> tasks = {{Value(0.8)}, {Value(1.2)}};
  const auto a = Tuner(problem_, options(7, 4)).tune_multitask(tasks);
  const auto b = Tuner(problem_, options(7, 4)).tune_multitask(tasks);
  for (std::size_t t = 0; t < 2; ++t)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_DOUBLE_EQ(a[t].history.evals()[i].output,
                       b[t].history.evals()[i].output);
}

TEST_F(MultitaskTuningTest, SourcesJoinTheJointModel) {
  const TaskHistory source =
      collect_random_samples(problem_, {Value(0.8)}, 40, 3);
  const auto results = Tuner(problem_, options(2, 5))
                           .tune_multitask({{Value(1.0)}}, {source});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].history.size(), 5u);
  EXPECT_TRUE(std::isfinite(*results[0].best_output()));
}

TEST_F(MultitaskTuningTest, JointTuningIsCompetitiveWithIndependent) {
  // Three correlated tasks, small per-task budget: joint LCM tuning should
  // be at least as good on average as independent NoTLA runs.
  const std::vector<space::Config> tasks = {{Value(0.9)}, {Value(1.0)},
                                            {Value(1.1)}};
  double joint = 0.0, indep = 0.0;
  const int kSeeds = 2;
  for (int s = 0; s < kSeeds; ++s) {
    const auto results =
        Tuner(problem_, options(100 + s, 6)).tune_multitask(tasks);
    for (const auto& r : results) joint += *r.best_output();
    for (const auto& task : tasks) {
      auto o = options(100 + s, 6);
      o.algorithm = TlaKind::NoTLA;
      indep += *Tuner(problem_, o).tune(task).best_output();
    }
  }
  EXPECT_LT(joint, indep + 0.5 * kSeeds);  // allow slack; must not be worse
}

TEST_F(MultitaskTuningTest, HandlesFailuresInOneTask) {
  space::TuningProblem p = problem_;
  p.objective = [base = problem_.objective](const space::Config& task,
                                            const space::Config& params) {
    // Task t=5.0 fails for x < 0.6 (most of the space).
    if (task[0].as_double() > 4.0 && params[0].as_double() < 0.6)
      return std::numeric_limits<double>::quiet_NaN();
    return base(task, params);
  };
  const auto results = Tuner(p, options(4, 8))
                           .tune_multitask({{Value(1.0)}, {Value(5.0)}});
  EXPECT_TRUE(std::isfinite(*results[0].best_output()));
  // The failing task keeps its failures recorded; with 8 tries it should
  // eventually land one success.
  EXPECT_EQ(results[1].history.size(), 8u);
}

TEST_F(MultitaskTuningTest, InvalidInputsThrow) {
  EXPECT_THROW(Tuner(problem_, options(0, 4)).tune_multitask({}),
               std::invalid_argument);
  EXPECT_THROW(
      Tuner(problem_, options(0, 4)).tune_multitask({{Value(99.0)}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace gptc::core
