#include "core/acquisition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gp/gaussian_process.hpp"
#include "opt/optimize.hpp"

namespace gptc::core {
namespace {

TEST(NormalDistribution, PdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(normal_pdf(1.0), 0.2419707245, 1e-9);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalDistribution, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(8.0), 1.0, 1e-12);
  EXPECT_NEAR(normal_cdf(-8.0), 0.0, 1e-12);
}

TEST(ExpectedImprovement, ZeroVarianceReducesToPlainImprovement) {
  gp::Prediction p;
  p.mean = 3.0;
  p.variance = 0.0;
  EXPECT_DOUBLE_EQ(expected_improvement(p, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(expected_improvement(p, 2.0), 0.0);
}

TEST(ExpectedImprovement, AlwaysNonNegative) {
  rng::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    gp::Prediction p;
    p.mean = rng.uniform(-10.0, 10.0);
    p.variance = rng.uniform(0.0, 4.0);
    EXPECT_GE(expected_improvement(p, rng.uniform(-10.0, 10.0)), 0.0);
  }
}

TEST(ExpectedImprovement, DecreasesWithMean) {
  gp::Prediction lo, hi;
  lo.mean = 1.0;
  hi.mean = 2.0;
  lo.variance = hi.variance = 1.0;
  EXPECT_GT(expected_improvement(lo, 1.5), expected_improvement(hi, 1.5));
}

TEST(ExpectedImprovement, IncreasesWithUncertaintyWhenMeanIsWorse) {
  gp::Prediction narrow, wide;
  narrow.mean = wide.mean = 2.0;  // worse than best = 1.0
  narrow.variance = 0.01;
  wide.variance = 4.0;
  EXPECT_GT(expected_improvement(wide, 1.0),
            expected_improvement(narrow, 1.0));
}

TEST(ExpectedImprovement, ApproachesImprovementForDeepMean) {
  gp::Prediction p;
  p.mean = -10.0;
  p.variance = 0.01;
  EXPECT_NEAR(expected_improvement(p, 0.0), 10.0, 1e-3);
}

TEST(LowerConfidenceBound, Formula) {
  gp::Prediction p;
  p.mean = 2.0;
  p.variance = 4.0;
  EXPECT_DOUBLE_EQ(lower_confidence_bound(p, 1.5), 2.0 - 3.0);
  EXPECT_DOUBLE_EQ(lower_confidence_bound(p), 2.0 - 4.0);
}

class AcquisitionSearchTest : public ::testing::Test {
 protected:
  // GP trained on a clean quadratic valley with minimum near x = 0.7.
  AcquisitionSearchTest() : model_(1) {
    std::vector<la::Vector> xs;
    la::Vector ys;
    for (int i = 0; i <= 12; ++i) {
      const double x = i / 12.0;
      xs.push_back({x});
      ys.push_back((x - 0.7) * (x - 0.7));
    }
    rng::Rng rng(2);
    model_.fit(la::Matrix::from_rows(xs), ys, rng);
  }

  gp::GaussianProcess model_;
};

TEST_F(AcquisitionSearchTest, MinimizeMeanFindsTheValley) {
  rng::Rng rng(3);
  const la::Vector x = minimize_mean(model_, rng);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_NEAR(x[0], 0.7, 0.05);
}

TEST_F(AcquisitionSearchTest, MaximizeEiStaysInUnitCube) {
  rng::Rng rng(4);
  for (std::uint64_t i = 0; i < 5; ++i) {
    rng::Rng sub = rng.split(i);
    const la::Vector x = maximize_ei(model_, 0.2, sub);
    EXPECT_GE(x[0], 0.0);
    EXPECT_LE(x[0], 1.0);
  }
}

TEST_F(AcquisitionSearchTest, MaximizeEiPrefersPromisingRegion) {
  // With best = 0.05 (already good), EI concentrates near the valley.
  rng::Rng rng(5);
  const la::Vector x = maximize_ei(model_, 0.05, rng);
  EXPECT_NEAR(x[0], 0.7, 0.2);
}

TEST_F(AcquisitionSearchTest, SeedsAreRespected) {
  // A degenerate search budget with only the seed as population member
  // must still return a finite point.
  AcquisitionOptions opts;
  opts.de_population = 4;
  opts.de_generations = 0;
  opts.extra_random_seeds = 0;
  rng::Rng rng(6);
  const la::Vector x = maximize_ei(model_, 0.1, rng, {{0.7}}, opts);
  EXPECT_TRUE(std::isfinite(x[0]));
}

TEST_F(AcquisitionSearchTest, DeterministicPerRngState) {
  rng::Rng r1(7), r2(7);
  const la::Vector a = maximize_ei(model_, 0.1, r1);
  const la::Vector b = maximize_ei(model_, 0.1, r2);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
}

}  // namespace
}  // namespace gptc::core
