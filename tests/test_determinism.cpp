// Serial-vs-parallel equivalence suite: every parallelized path must
// produce BITWISE identical results for any thread count. These tests run
// each path at num_threads in {0 (serial), 1, 4, 7} and compare exactly —
// no tolerances. A failure here means a parallel loop leaked execution
// order into its result (shared RNG, unordered reduction, racy write).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/tuner.hpp"
#include "gp/gaussian_process.hpp"
#include "opt/optimize.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

namespace gptc {
namespace {

using space::Config;
using space::Value;

/// Pool sizes the equivalence tests sweep. 0 maps to a null pool (the pure
/// serial path); 7 is deliberately not a divisor of typical work counts.
const std::size_t kPoolSizes[] = {0, 1, 4, 7};

std::shared_ptr<parallel::ThreadPool> make_pool(std::size_t n) {
  if (n == 0) return nullptr;
  return std::make_shared<parallel::ThreadPool>(n);
}

/// A smooth multimodal test objective on [0,1]^d.
double rastrigin_like(const la::Vector& x) {
  double s = 0.0;
  for (double v : x) {
    const double z = 2.0 * v - 1.0;
    s += z * z - 0.3 * std::cos(7.0 * z);
  }
  return s;
}

TEST(DeterminismTest, MultistartNelderMeadIdenticalAcrossPoolSizes) {
  rng::Rng rng(42);
  std::vector<la::Vector> starts;
  for (int i = 0; i < 10; ++i) {
    la::Vector s(3);
    for (double& v : s) v = rng.uniform();
    starts.push_back(s);
  }

  opt::Result reference;
  bool have_reference = false;
  for (std::size_t n : kPoolSizes) {
    opt::NelderMeadOptions o;
    o.clamp_unit_cube = true;
    o.pool = make_pool(n);
    const opt::Result r = opt::multistart_nelder_mead(rastrigin_like, starts, o);
    if (!have_reference) {
      reference = r;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(r.value, reference.value) << "pool size " << n;
    EXPECT_EQ(r.evaluations, reference.evaluations) << "pool size " << n;
    ASSERT_EQ(r.x.size(), reference.x.size());
    for (std::size_t i = 0; i < r.x.size(); ++i)
      EXPECT_EQ(r.x[i], reference.x[i]) << "pool size " << n << " dim " << i;
  }
}

TEST(DeterminismTest, MultistartTieBreaksToLowestStartIndex) {
  // A flat objective makes every restart tie: the winner must be start 0,
  // regardless of pool size or completion order.
  const auto flat = [](const la::Vector&) { return 3.25; };
  std::vector<la::Vector> starts;
  for (int i = 0; i < 6; ++i) starts.push_back(la::Vector(2, 0.1 * (i + 1)));
  for (std::size_t n : kPoolSizes) {
    opt::NelderMeadOptions o;
    o.max_evaluations = 20;
    o.pool = make_pool(n);
    const opt::Result r = opt::multistart_nelder_mead(flat, starts, o);
    EXPECT_EQ(r.value, 3.25);
    // On a flat function NM never moves, so the reported point is the
    // winning start itself.
    for (std::size_t i = 0; i < r.x.size(); ++i)
      EXPECT_EQ(r.x[i], starts[0][i]) << "pool size " << n;
  }
}

TEST(DeterminismTest, DifferentialEvolutionIdenticalAcrossPoolSizes) {
  opt::Result reference;
  bool have_reference = false;
  for (std::size_t n : kPoolSizes) {
    opt::DifferentialEvolutionOptions o;
    o.population = 20;
    o.generations = 25;
    o.pool = make_pool(n);
    rng::Rng rng(7);  // fresh identically-seeded rng per run
    const opt::Result r = opt::differential_evolution(rastrigin_like, 4, rng, o);
    if (!have_reference) {
      reference = r;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(r.value, reference.value) << "pool size " << n;
    EXPECT_EQ(r.evaluations, reference.evaluations) << "pool size " << n;
    for (std::size_t i = 0; i < r.x.size(); ++i)
      EXPECT_EQ(r.x[i], reference.x[i]) << "pool size " << n << " dim " << i;
  }
}

TEST(DeterminismTest, GaussianProcessFitIdenticalAcrossPoolSizes) {
  // Training data from a fixed stream.
  rng::Rng data_rng(99);
  const std::size_t kSamples = 24, kDim = 2;
  la::Matrix x(kSamples, kDim);
  la::Vector y(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    la::Vector p(kDim);
    for (std::size_t d = 0; d < kDim; ++d) {
      p[d] = data_rng.uniform();
      x(i, d) = p[d];
    }
    y[i] = rastrigin_like(p) + 0.01 * data_rng.normal();
  }

  la::Vector ref_hyper;
  gp::Prediction ref_pred;
  bool have_reference = false;
  la::Vector query(kDim, 0.4);
  for (std::size_t n : kPoolSizes) {
    gp::GpOptions o;
    o.fit_restarts = 4;  // enough restarts that parallel order could matter
    o.fit_evaluations = 80;
    o.pool = make_pool(n);
    gp::GaussianProcess gp(kDim, o);
    rng::Rng fit_rng(5);
    gp.fit(x, y, fit_rng);
    const la::Vector h = gp.log_hyper();
    const gp::Prediction pred = gp.predict(query);
    if (!have_reference) {
      ref_hyper = h;
      ref_pred = pred;
      have_reference = true;
      continue;
    }
    ASSERT_EQ(h.size(), ref_hyper.size());
    for (std::size_t i = 0; i < h.size(); ++i)
      EXPECT_EQ(h[i], ref_hyper[i]) << "pool size " << n << " hyper " << i;
    EXPECT_EQ(pred.mean, ref_pred.mean) << "pool size " << n;
    EXPECT_EQ(pred.variance, ref_pred.variance) << "pool size " << n;
  }
}

TEST(DeterminismTest, EnsembleTunerRunIdenticalAcrossThreadCounts) {
  // End-to-end: a 20-iteration Ensemble(proposed) run — GP fits, LCM fits,
  // acquisition DE searches and the TLA ensemble all engaged — must yield
  // the exact same evaluation history at every thread count.
  const space::TuningProblem problem = apps::make_demo_problem();
  const core::TaskHistory source =
      core::collect_random_samples(problem, {Value(0.8)}, 60, 1234);

  std::vector<double> ref_best;
  std::vector<double> ref_outputs;
  bool have_reference = false;
  for (std::size_t n : kPoolSizes) {
    core::TunerOptions o;
    o.budget = 20;
    o.algorithm = core::TlaKind::EnsembleProposed;
    o.seed = 11;
    o.num_threads = static_cast<int>(n);
    // Shrunk fit budgets keep the 4-way sweep fast without changing what is
    // being compared.
    o.tla.gp.fit_restarts = 2;
    o.tla.gp.fit_evaluations = 50;
    o.tla.lcm.fit_restarts = 1;
    o.tla.lcm.fit_evaluations = 60;
    o.tla.lcm.max_samples_per_task = 30;
    o.tla.max_source_samples = 40;
    o.tla.acquisition.de_population = 12;
    o.tla.acquisition.de_generations = 10;
    const core::TuningResult r =
        core::Tuner(problem, o).tune({Value(1.0)}, {source});
    std::vector<double> outputs;
    for (const auto& e : r.history.evals()) outputs.push_back(e.output);
    if (!have_reference) {
      ref_best = r.best_so_far;
      ref_outputs = outputs;
      have_reference = true;
      continue;
    }
    ASSERT_EQ(outputs.size(), ref_outputs.size()) << "threads " << n;
    for (std::size_t i = 0; i < outputs.size(); ++i)
      EXPECT_EQ(outputs[i], ref_outputs[i]) << "threads " << n << " iter " << i;
    ASSERT_EQ(r.best_so_far.size(), ref_best.size());
    for (std::size_t i = 0; i < ref_best.size(); ++i)
      EXPECT_EQ(r.best_so_far[i], ref_best[i]) << "threads " << n << " iter " << i;
  }
}

}  // namespace
}  // namespace gptc
