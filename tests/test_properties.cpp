// Property-based parameterized sweeps over the numerical substrates:
// invariants that must hold for every configuration in a family, checked
// with TEST_P / INSTANTIATE_TEST_SUITE_P grids.
#include <gtest/gtest.h>

#include <cmath>

#include "gp/kernel.hpp"
#include "la/matrix.hpp"
#include "opt/optimize.hpp"
#include "sa/sobol.hpp"
#include "space/space.hpp"

namespace gptc {
namespace {

// ---------------------------------------------------------------------------
// Kernel family properties: for every (kind, dim), random kernel matrices
// must be symmetric, have unit-diagonal ratio sf^2, and be PSD (Cholesky
// succeeds with negligible jitter).

using KernelCase = std::tuple<gp::KernelKind, int>;

class KernelProperty : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelProperty, GramMatricesArePsdAndSymmetric) {
  const auto [kind, dim] = GetParam();
  rng::Rng rng(static_cast<std::uint64_t>(dim) * 7 + 1);
  gp::Kernel kernel(kind, static_cast<std::size_t>(dim));
  // Random hyperparameters within the fit bounds.
  la::Vector h(kernel.num_hyper());
  for (std::size_t i = 0; i < kernel.dim(); ++i)
    h[i] = rng.uniform(-2.0, 1.0);
  h[kernel.dim()] = rng.uniform(-1.0, 1.0);
  kernel.set_log_hyper(h);

  const auto pts = opt::latin_hypercube(20, static_cast<std::size_t>(dim), rng);
  const la::Matrix x = la::Matrix::from_rows({pts.begin(), pts.end()});
  const la::Matrix k = kernel.gram(x);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(k(i, i), kernel.signal_variance(), 1e-10);
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_DOUBLE_EQ(k(i, j), k(j, i));
      EXPECT_LE(std::abs(k(i, j)), kernel.signal_variance() + 1e-12);
    }
  }
  la::Matrix k_reg = k;
  k_reg.add_diagonal(1e-8 * kernel.signal_variance());
  EXPECT_NO_THROW(la::Cholesky chol(k_reg));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndDims, KernelProperty,
    ::testing::Combine(::testing::Values(gp::KernelKind::SquaredExponential,
                                         gp::KernelKind::Matern52),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<KernelCase>& param_info) {
      const gp::KernelKind kind = std::get<0>(param_info.param);
      const int dim = std::get<1>(param_info.param);
      return std::string(kind == gp::KernelKind::Matern52 ? "Matern52"
                                                          : "SqExp") +
             "_d" + std::to_string(dim);
    });

// ---------------------------------------------------------------------------
// Parameter encode/decode round trip: decode(encode(v)) == v for every
// discrete value, and decode stays in range for any u in [0,1], across a
// family of parameter shapes.

struct ParamCase {
  std::string label;
  space::Parameter parameter;
};

class ParameterProperty : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ParameterProperty, RoundTripAndRangeInvariant) {
  const auto& p = GetParam().parameter;
  rng::Rng rng(11);
  // Every sampled value survives a round trip.
  for (int i = 0; i < 200; ++i) {
    const space::Value v = p.sample(rng);
    ASSERT_TRUE(p.contains(v));
    const space::Value round = p.decode(p.encode(v));
    if (p.kind() == space::ParamKind::Real)
      EXPECT_NEAR(round.as_double(), v.as_double(), 1e-9);
    else
      EXPECT_TRUE(round == v);
  }
  // Any u in [0,1] decodes into range.
  for (int i = 0; i <= 100; ++i) {
    EXPECT_TRUE(p.contains(p.decode(i / 100.0)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParameterProperty,
    ::testing::Values(
        ParamCase{"real_unit", space::Parameter::real("r", 0.0, 1.0)},
        ParamCase{"real_negative", space::Parameter::real("r", -7.5, -2.5)},
        ParamCase{"real_wide", space::Parameter::real("r", 1e-3, 1e3)},
        ParamCase{"int_binary", space::Parameter::integer("i", 0, 2)},
        ParamCase{"int_offset", space::Parameter::integer("i", 30, 300)},
        ParamCase{"int_negative", space::Parameter::integer("i", -5, 6)},
        ParamCase{"cat_two", space::Parameter::categorical("c", {"a", "b"})},
        ParamCase{"cat_eight",
                  space::Parameter::categorical(
                      "c", {"a", "b", "c", "d", "e", "f", "g", "h"})}),
    [](const ::testing::TestParamInfo<ParamCase>& param_info) {
      return param_info.param.label;
    });

// ---------------------------------------------------------------------------
// Sobol estimator property: for additive functions y = sum_i c_i * x_i the
// indices must match the analytic variance shares c_i^2 / sum c_j^2, and
// S1 ~ ST (no interactions) — swept over coefficient vectors.

class SobolAdditiveProperty
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(SobolAdditiveProperty, IndicesMatchVarianceShares) {
  const std::vector<double> coef = GetParam();
  const sa::CubeFn f = [&](const la::Vector& u) {
    double s = 0.0;
    for (std::size_t i = 0; i < coef.size(); ++i) s += coef[i] * u[i];
    return s;
  };
  double total = 0.0;
  for (double c : coef) total += c * c;

  std::vector<std::string> names;
  for (std::size_t i = 0; i < coef.size(); ++i)
    names.push_back("x" + std::to_string(i));
  rng::Rng rng(17);
  sa::SobolOptions opt;
  opt.base_samples = 2048;
  opt.bootstrap = 20;
  const sa::SobolResult r =
      sa::analyze_function(f, coef.size(), names, rng, opt);
  for (std::size_t i = 0; i < coef.size(); ++i) {
    const double expected = coef[i] * coef[i] / total;
    EXPECT_NEAR(r.s1[i], expected, 0.05) << "S1 of x" << i;
    EXPECT_NEAR(r.st[i], expected, 0.05) << "ST of x" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoefficientVectors, SobolAdditiveProperty,
    ::testing::Values(std::vector<double>{1.0, 1.0},
                      std::vector<double>{1.0, 2.0, 4.0},
                      std::vector<double>{3.0, 0.0, 1.0},
                      std::vector<double>{1.0, 1.0, 1.0, 1.0, 1.0}));

// ---------------------------------------------------------------------------
// Least-squares property: the residual of the LS solution is orthogonal to
// the column space (normal equations), for a sweep of shapes.

using LsShape = std::pair<int, int>;

class LeastSquaresProperty : public ::testing::TestWithParam<LsShape> {};

TEST_P(LeastSquaresProperty, ResidualOrthogonalToColumns) {
  const auto [rows, cols] = GetParam();
  rng::Rng rng(static_cast<std::uint64_t>(rows) * 31 +
               static_cast<std::uint64_t>(cols));
  la::Matrix a(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (auto& v : a.data()) v = rng.normal();
  la::Vector b(static_cast<std::size_t>(rows));
  for (auto& v : b) v = rng.normal();
  const la::Vector x = la::least_squares(a, b);
  const la::Vector r = la::subtract(la::matvec(a, x), b);
  const la::Vector atr = la::matvec_t(a, r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LeastSquaresProperty,
                         ::testing::Values(LsShape{5, 2}, LsShape{20, 5},
                                           LsShape{50, 10}, LsShape{8, 8}));

// ---------------------------------------------------------------------------
// Sampler property: every design type fills [0,1]^d, is deterministic per
// seed, and has roughly uniform marginals.

enum class DesignKind { Random, Lhs, Halton };

class SamplerProperty
    : public ::testing::TestWithParam<std::tuple<DesignKind, int>> {};

TEST_P(SamplerProperty, UniformMarginals) {
  const auto [kind, dim] = GetParam();
  const std::size_t n = 400;
  rng::Rng rng(23);
  std::vector<la::Vector> pts;
  switch (kind) {
    case DesignKind::Random:
      pts = opt::random_design(n, static_cast<std::size_t>(dim), rng);
      break;
    case DesignKind::Lhs:
      pts = opt::latin_hypercube(n, static_cast<std::size_t>(dim), rng);
      break;
    case DesignKind::Halton:
      pts = opt::scrambled_halton(n, static_cast<std::size_t>(dim), rng);
      break;
  }
  ASSERT_EQ(pts.size(), n);
  for (int d = 0; d < dim; ++d) {
    double mean = 0.0;
    for (const auto& p : pts) {
      ASSERT_GE(p[static_cast<std::size_t>(d)], 0.0);
      ASSERT_LT(p[static_cast<std::size_t>(d)], 1.0);
      mean += p[static_cast<std::size_t>(d)];
    }
    EXPECT_NEAR(mean / static_cast<double>(n), 0.5, 0.06);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndDims, SamplerProperty,
    ::testing::Combine(::testing::Values(DesignKind::Random, DesignKind::Lhs,
                                         DesignKind::Halton),
                       ::testing::Values(1, 3, 8)),
    [](const ::testing::TestParamInfo<std::tuple<DesignKind, int>>& param_info) {
      const DesignKind kind = std::get<0>(param_info.param);
      const int dim = std::get<1>(param_info.param);
      const std::string name =
          kind == DesignKind::Random
              ? "Random"
              : (kind == DesignKind::Lhs ? "Lhs" : "Halton");
      return name + "_d" + std::to_string(dim);
    });

}  // namespace
}  // namespace gptc
