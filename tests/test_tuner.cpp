// End-to-end tests of the BO loop and every TLA algorithm on the synthetic
// problems of Sec. VI-A.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/synthetic.hpp"
#include "core/tuner.hpp"

namespace gptc::core {
namespace {

using space::Config;
using space::Value;

TunerOptions fast_options(TlaKind kind, std::uint64_t seed) {
  TunerOptions o;
  o.budget = 8;
  o.algorithm = kind;
  o.seed = seed;
  // Trim model-fit budgets so the full matrix of algorithms stays fast.
  o.tla.gp.fit_restarts = 1;
  o.tla.gp.fit_evaluations = 60;
  o.tla.lcm.fit_restarts = 0;
  o.tla.lcm.fit_evaluations = 80;
  o.tla.lcm.max_samples_per_task = 40;
  o.tla.acquisition.de_population = 16;
  o.tla.acquisition.de_generations = 15;
  return o;
}

class TunerDemoTest : public ::testing::Test {
 protected:
  TunerDemoTest() : problem_(apps::make_demo_problem()) {
    source_ = collect_random_samples(problem_, {Value(0.8)}, 60, 1234);
  }

  space::TuningProblem problem_;
  TaskHistory source_;
};

TEST_F(TunerDemoTest, NoTlaFindsReasonableMinimum) {
  TunerOptions o = fast_options(TlaKind::NoTLA, 1);
  o.budget = 15;
  const TuningResult r = Tuner(problem_, o).tune({Value(1.0)});
  ASSERT_TRUE(r.best_output().has_value());
  // Demo function at t=1.0: global minimum 0.735, flat value 1.0 at x=0 and
  // x=0.5. BO with 15 evaluations must land clearly below the flat level.
  EXPECT_LT(*r.best_output(), 0.95);
  EXPECT_EQ(r.history.size(), 15u);
  EXPECT_EQ(r.best_so_far.size(), 15u);
}

TEST_F(TunerDemoTest, BestSoFarIsMonotoneNonIncreasing) {
  const TuningResult r =
      Tuner(problem_, fast_options(TlaKind::NoTLA, 2)).tune({Value(1.0)});
  for (std::size_t i = 1; i < r.best_so_far.size(); ++i)
    EXPECT_LE(r.best_so_far[i], r.best_so_far[i - 1] + 1e-15);
}

TEST_F(TunerDemoTest, ResultsAreDeterministicPerSeed) {
  const auto opts = fast_options(TlaKind::MultitaskTS, 7);
  const TuningResult a = Tuner(problem_, opts).tune({Value(1.0)}, {source_});
  const TuningResult b = Tuner(problem_, opts).tune({Value(1.0)}, {source_});
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i)
    EXPECT_DOUBLE_EQ(a.history.evals()[i].output, b.history.evals()[i].output);
}

TEST_F(TunerDemoTest, DifferentSeedsExploreDifferently) {
  const TuningResult a =
      Tuner(problem_, fast_options(TlaKind::NoTLA, 1)).tune({Value(1.0)});
  const TuningResult b =
      Tuner(problem_, fast_options(TlaKind::NoTLA, 99)).tune({Value(1.0)});
  bool any_diff = false;
  for (std::size_t i = 0; i < a.history.size(); ++i)
    if (a.history.evals()[i].output != b.history.evals()[i].output)
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

// Every TLA algorithm must run end-to-end on the demo transfer scenario.
class TlaAlgorithmTest : public TunerDemoTest,
                         public ::testing::WithParamInterface<TlaKind> {};

TEST_P(TlaAlgorithmTest, RunsAndRecordsBudgetEvaluations) {
  const TuningResult r = Tuner(problem_, fast_options(GetParam(), 3))
                             .tune({Value(1.0)}, {source_});
  EXPECT_EQ(r.history.size(), 8u);
  ASSERT_TRUE(r.best_output().has_value());
  EXPECT_TRUE(std::isfinite(*r.best_output()));
  EXPECT_EQ(r.proposed_by.size(), 8u);
  for (const auto& name : r.proposed_by) EXPECT_FALSE(name.empty());
}

TEST_P(TlaAlgorithmTest, FirstEvalOfTlaUsesWeightedSumEqual) {
  if (GetParam() == TlaKind::NoTLA) GTEST_SKIP();
  const TuningResult r = Tuner(problem_, fast_options(GetParam(), 4))
                             .tune({Value(1.0)}, {source_});
  EXPECT_EQ(r.proposed_by.front(), "WeightedSum(equal)");
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, TlaAlgorithmTest,
    ::testing::ValuesIn(all_tla_kinds()),
    [](const ::testing::TestParamInfo<TlaKind>& param_info) {
      std::string n(to_string(param_info.param));
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST_F(TunerDemoTest, TlaBeatsNoTlaEarlyOnAverage) {
  // The paper's key claim at small budgets (Fig. 3): with a correlated
  // source task, transfer learning finds good configurations sooner.
  double tla_sum = 0.0, notla_sum = 0.0;
  const int kSeeds = 3;
  for (int s = 0; s < kSeeds; ++s) {
    TunerOptions to = fast_options(TlaKind::MultitaskTS, 100 + s);
    to.budget = 5;
    tla_sum +=
        *Tuner(problem_, to).tune({Value(1.0)}, {source_}).best_output();
    TunerOptions no = fast_options(TlaKind::NoTLA, 100 + s);
    no.budget = 5;
    notla_sum += *Tuner(problem_, no).tune({Value(1.0)}).best_output();
  }
  EXPECT_LT(tla_sum / kSeeds, notla_sum / kSeeds + 0.35);
}

TEST_F(TunerDemoTest, SourcesWithoutDataFallBackToNoTla) {
  TaskHistory empty_source({Value(0.8)});
  const TuningResult r = Tuner(problem_, fast_options(TlaKind::Stacking, 5))
                             .tune({Value(1.0)}, {empty_source});
  EXPECT_EQ(r.history.size(), 8u);
  EXPECT_EQ(r.proposed_by.front(), "NoTLA");
}

TEST_F(TunerDemoTest, FailuresAreRecordedButExcluded) {
  // Objective that fails (NaN) on the lower half of the range: the tuner
  // must survive and report a finite best.
  space::TuningProblem p = problem_;
  p.objective = [base = problem_.objective](const Config& task,
                                            const Config& params) {
    if (params[0].as_double() < 0.5)
      return std::numeric_limits<double>::quiet_NaN();
    return base(task, params);
  };
  TunerOptions o = fast_options(TlaKind::NoTLA, 6);
  o.budget = 12;
  const TuningResult r = Tuner(p, o).tune({Value(1.0)});
  EXPECT_EQ(r.history.size(), 12u);
  std::size_t failures = 0;
  for (const auto& e : r.history.evals())
    if (e.failed()) ++failures;
  EXPECT_GT(failures, 0u);
  ASSERT_TRUE(r.best_output().has_value());
  EXPECT_TRUE(std::isfinite(*r.best_output()));
}

TEST_F(TunerDemoTest, DuplicateConfigsAvoidedInTinyIntegerSpace) {
  space::TuningProblem p;
  p.name = "tiny";
  p.task_space = space::Space({space::Parameter::integer("t", 0, 2)});
  p.param_space = space::Space({space::Parameter::integer("k", 0, 10)});
  p.objective = [](const Config&, const Config& params) {
    const double k = static_cast<double>(params[0].as_int());
    return (k - 7.0) * (k - 7.0) + 1.0;
  };
  TunerOptions o = fast_options(TlaKind::NoTLA, 8);
  o.budget = 10;
  const TuningResult r = Tuner(p, o).tune({Value(std::int64_t{0})});
  // 10 distinct configs exist; with dedup retries most evaluations should
  // be unique.
  std::set<std::int64_t> seen;
  for (const auto& e : r.history.evals()) seen.insert(e.params[0].as_int());
  EXPECT_GE(seen.size(), 8u);
  EXPECT_EQ(*r.best_output(), 1.0);  // k=7 must be found in 10 tries
}

TEST_F(TunerDemoTest, CallbackSeesEveryEvaluation) {
  int calls = 0;
  TunerOptions o = fast_options(TlaKind::NoTLA, 9);
  o.on_evaluation = [&](int i, const EvalRecord& rec, double best) {
    EXPECT_EQ(i, calls);
    EXPECT_EQ(rec.params.size(), 1u);
    EXPECT_TRUE(std::isfinite(best));
    ++calls;
  };
  Tuner(problem_, o).tune({Value(1.0)});
  EXPECT_EQ(calls, 8);
}

TEST_F(TunerDemoTest, InvalidInputsThrow) {
  EXPECT_THROW(Tuner(problem_, fast_options(TlaKind::NoTLA, 0))
                   .tune({Value(50.0)}),  // outside task space
               std::invalid_argument);
  TunerOptions bad = fast_options(TlaKind::NoTLA, 0);
  bad.budget = 0;
  EXPECT_THROW(Tuner(problem_, bad), std::invalid_argument);
  space::TuningProblem no_obj = problem_;
  no_obj.objective = nullptr;
  EXPECT_THROW(Tuner(no_obj, fast_options(TlaKind::NoTLA, 0)),
               std::invalid_argument);
}

TEST(TlaNames, RoundTrip) {
  for (TlaKind k : all_tla_kinds()) {
    const auto parsed = tla_from_string(to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(tla_from_string("bogus").has_value());
}

TEST(CollectRandomSamples, ProducesRequestedCount) {
  const auto problem = apps::make_demo_problem();
  const TaskHistory h = collect_random_samples(problem, {Value(0.8)}, 25, 9);
  EXPECT_EQ(h.size(), 25u);
  EXPECT_EQ(h.num_valid(), 25u);
  ASSERT_TRUE(h.best_output().has_value());
}

TEST(CollectRandomSamples, DeterministicPerSeed) {
  const auto problem = apps::make_demo_problem();
  const TaskHistory a = collect_random_samples(problem, {Value(0.8)}, 10, 5);
  const TaskHistory b = collect_random_samples(problem, {Value(0.8)}, 10, 5);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.evals()[i].output, b.evals()[i].output);
}

}  // namespace
}  // namespace gptc::core
