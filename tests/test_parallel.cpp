// Unit tests for the deterministic thread pool and the RNG stream-splitting
// contract the parallel loops rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

namespace gptc::parallel {
namespace {

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitFutureRethrowsTaskException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SizeZeroPoolIsLegalAndRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> out(8, 0);
  parallel_for(&pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) + 1;
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, PoolOfOneMatchesSerialResults) {
  // The determinism contract in its smallest form: the same body over a
  // null pool (serial) and a 1-worker pool must produce identical slots.
  auto body_value = [](std::size_t i) {
    return std::sin(static_cast<double>(i) * 0.37) + static_cast<double>(i);
  };
  constexpr std::size_t kN = 257;
  std::vector<double> serial(kN), pooled(kN);
  parallel_for(nullptr, kN, [&](std::size_t i) { serial[i] = body_value(i); });
  ThreadPool pool(1);
  parallel_for(&pool, kN, [&](std::size_t i) { pooled[i] = body_value(i); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(serial[i], pooled[i]);
}

TEST(ParallelForTest, ManyWorkersMatchSerialResults) {
  constexpr std::size_t kN = 513;
  std::vector<double> serial = parallel_map(
      static_cast<ThreadPool*>(nullptr), kN,
      [](std::size_t i) { return std::cos(static_cast<double>(i)); });
  for (std::size_t workers : {2u, 4u, 7u}) {
    ThreadPool pool(workers);
    const std::vector<double> pooled = parallel_map(
        &pool, kN, [](std::size_t i) { return std::cos(static_cast<double>(i)); });
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(serial[i], pooled[i]);
  }
}

TEST(ParallelForTest, BodyExceptionIsRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 64,
                   [&](std::size_t i) {
                     if (i % 5 == 3) throw std::runtime_error("iteration died");
                   }),
      std::runtime_error);
}

TEST(ParallelForTest, LowestIndexExceptionWinsSerially) {
  // On the serial path the first (lowest-index) throwing iteration must be
  // the one reported, and later iterations must not run.
  std::vector<int> ran(10, 0);
  try {
    parallel_for(nullptr, 10, [&](std::size_t i) {
      ran[i] = 1;
      if (i >= 4) throw std::out_of_range("idx " + std::to_string(i));
    });
    FAIL() << "expected throw";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "idx 4");
  }
  for (std::size_t i = 5; i < 10; ++i) EXPECT_EQ(ran[i], 0);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Outer loop saturates every worker; each iteration runs an inner
  // parallel_for on the same pool. The inner loops must detect they are on
  // a worker thread and run inline instead of queueing (which would wait on
  // workers that are all busy waiting — a deadlock).
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8, kInner = 16;
  std::vector<std::vector<int>> out(kOuter, std::vector<int>(kInner, 0));
  parallel_for(&pool, kOuter, [&](std::size_t i) {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    parallel_for(&pool, kInner, [&](std::size_t j) {
      out[i][j] = static_cast<int>(i * kInner + j);
    });
  });
  for (std::size_t i = 0; i < kOuter; ++i)
    for (std::size_t j = 0; j < kInner; ++j)
      EXPECT_EQ(out[i][j], static_cast<int>(i * kInner + j));
}

TEST(ParallelMapTest, ReturnsResultsInIndexOrder) {
  ThreadPool pool(3);
  const std::vector<std::size_t> out =
      parallel_map(&pool, 100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(RngStreamsTest, SplitStreamsMatchIndexedSplit) {
  const rng::Rng parent(12345);
  const auto streams = parent.split_streams(16);
  ASSERT_EQ(streams.size(), 16u);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    rng::Rng a = streams[i];
    rng::Rng b = parent.split(static_cast<std::uint64_t>(i));
    for (int k = 0; k < 32; ++k) EXPECT_EQ(a(), b());
  }
}

TEST(RngStreamsTest, StreamsAreReproducibleAndDisjoint) {
  const rng::Rng parent(987);
  const auto first = parent.split_streams(8);
  const auto second = parent.split_streams(8);
  for (std::size_t i = 0; i < 8; ++i) {
    rng::Rng a = first[i], b = second[i];
    for (int k = 0; k < 16; ++k) EXPECT_EQ(a(), b());
  }
  // Different indices must give statistically distinct streams: no two
  // streams may share their first few outputs.
  std::vector<std::uint64_t> heads;
  for (std::size_t i = 0; i < 8; ++i) {
    rng::Rng s = first[i];
    heads.push_back(s());
  }
  std::sort(heads.begin(), heads.end());
  EXPECT_EQ(std::adjacent_find(heads.begin(), heads.end()), heads.end());
}

TEST(RngStreamsTest, SplittingDoesNotPerturbParent) {
  rng::Rng a(555), b(555);
  (void)a.split_streams(32);
  (void)a.split("anything");
  for (int k = 0; k < 16; ++k) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace gptc::parallel
