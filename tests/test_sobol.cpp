// Validation of the Sobol/Saltelli estimators against functions with known
// analytic indices, plus the space-reduction helper of Sec. VI-D/E.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gp/gaussian_process.hpp"
#include "opt/optimize.hpp"
#include "sa/sobol.hpp"

namespace gptc::sa {
namespace {

using space::Config;
using space::Parameter;
using space::Space;
using space::Value;

constexpr double kPi = std::numbers::pi;

/// Ishigami function over [0,1]^3 mapped to [-pi,pi]^3; the classic Sobol
/// benchmark. Analytic indices for a=7, b=0.1:
///   S1 = (0.3139, 0.4424, 0), ST = (0.5576, 0.4424, 0.2437).
double ishigami(const la::Vector& u) {
  const double x1 = -kPi + 2.0 * kPi * u[0];
  const double x2 = -kPi + 2.0 * kPi * u[1];
  const double x3 = -kPi + 2.0 * kPi * u[2];
  return std::sin(x1) + 7.0 * std::sin(x2) * std::sin(x2) +
         0.1 * std::pow(x3, 4) * std::sin(x1);
}

TEST(Sobol, IshigamiMatchesAnalyticIndices) {
  rng::Rng rng(1);
  SobolOptions opt;
  opt.base_samples = 2048;
  const SobolResult r =
      analyze_function(ishigami, 3, {"x1", "x2", "x3"}, rng, opt);
  EXPECT_NEAR(r.s1[0], 0.3139, 0.05);
  EXPECT_NEAR(r.s1[1], 0.4424, 0.05);
  EXPECT_NEAR(r.s1[2], 0.0, 0.05);
  EXPECT_NEAR(r.st[0], 0.5576, 0.06);
  EXPECT_NEAR(r.st[1], 0.4424, 0.06);
  EXPECT_NEAR(r.st[2], 0.2437, 0.06);
}

TEST(Sobol, AdditiveLinearFunctionSplitsVarianceByCoefficient) {
  // f = 1*x1 + 2*x2: Var contributions 1:4, no interactions => S1 ~ ST.
  const CubeFn f = [](const la::Vector& u) { return u[0] + 2.0 * u[1]; };
  rng::Rng rng(2);
  SobolOptions opt;
  opt.base_samples = 2048;
  const SobolResult r = analyze_function(f, 2, {"a", "b"}, rng, opt);
  EXPECT_NEAR(r.s1[0], 0.2, 0.04);
  EXPECT_NEAR(r.s1[1], 0.8, 0.04);
  EXPECT_NEAR(r.st[0], 0.2, 0.04);
  EXPECT_NEAR(r.st[1], 0.8, 0.04);
}

TEST(Sobol, PureInteractionShowsInTotalEffectOnly) {
  // f = (x1-1/2)(x2-1/2): zero main effects, all variance in interaction.
  const CubeFn f = [](const la::Vector& u) {
    return (u[0] - 0.5) * (u[1] - 0.5);
  };
  rng::Rng rng(3);
  SobolOptions opt;
  opt.base_samples = 2048;
  const SobolResult r = analyze_function(f, 2, {"a", "b"}, rng, opt);
  EXPECT_NEAR(r.s1[0], 0.0, 0.05);
  EXPECT_NEAR(r.s1[1], 0.0, 0.05);
  EXPECT_NEAR(r.st[0], 1.0, 0.1);
  EXPECT_NEAR(r.st[1], 1.0, 0.1);
}

TEST(Sobol, InertParameterScoresZero) {
  const CubeFn f = [](const la::Vector& u) { return std::sin(6.0 * u[0]); };
  rng::Rng rng(4);
  SobolOptions opt;
  opt.base_samples = 1024;
  const SobolResult r = analyze_function(f, 2, {"live", "dead"}, rng, opt);
  EXPECT_GT(r.st[0], 0.8);
  EXPECT_NEAR(r.s1[1], 0.0, 0.03);
  EXPECT_NEAR(r.st[1], 0.0, 0.03);
}

TEST(Sobol, ConstantFunctionGivesAllZeros) {
  const CubeFn f = [](const la::Vector&) { return 5.0; };
  rng::Rng rng(5);
  SobolOptions opt;
  opt.base_samples = 256;
  const SobolResult r = analyze_function(f, 2, {"a", "b"}, rng, opt);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(r.s1[i], 0.0);
    EXPECT_DOUBLE_EQ(r.st[i], 0.0);
  }
}

TEST(Sobol, DeterministicPerSeed) {
  rng::Rng r1(6), r2(6);
  SobolOptions opt;
  opt.base_samples = 256;
  const SobolResult a = analyze_function(ishigami, 3, {"a", "b", "c"}, r1, opt);
  const SobolResult b = analyze_function(ishigami, 3, {"a", "b", "c"}, r2, opt);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.s1[i], b.s1[i]);
    EXPECT_DOUBLE_EQ(a.st_conf[i], b.st_conf[i]);
  }
}

TEST(Sobol, ConfidenceShrinksWithMoreSamples) {
  rng::Rng r1(7), r2(7);
  SobolOptions small, large;
  small.base_samples = 128;
  large.base_samples = 2048;
  const SobolResult a = analyze_function(ishigami, 3, {"a", "b", "c"}, r1, small);
  const SobolResult b = analyze_function(ishigami, 3, {"a", "b", "c"}, r2, large);
  EXPECT_LT(b.st_conf[0], a.st_conf[0]);
}

TEST(Sobol, RankingAndInfluenceHelpers) {
  SobolResult r;
  r.names = {"p0", "p1", "p2"};
  r.s1 = {0.0, 0.3, 0.05};
  r.s1_conf = {0.01, 0.01, 0.01};
  r.st = {0.1, 0.7, 0.4};
  r.st_conf = {0.01, 0.01, 0.01};
  const auto ranked = r.ranked_by_total_effect();
  EXPECT_EQ(ranked[0], 1u);
  EXPECT_EQ(ranked[1], 2u);
  EXPECT_EQ(ranked[2], 0u);
  const auto infl = r.influential(0.1, 0.3);
  ASSERT_EQ(infl.size(), 2u);
  EXPECT_EQ(infl[0], "p1");
  EXPECT_EQ(infl[1], "p2");
  EXPECT_FALSE(r.to_table().empty());
}

TEST(Sobol, RejectsBadInput) {
  rng::Rng rng(8);
  const CubeFn f = [](const la::Vector&) { return 0.0; };
  EXPECT_THROW(analyze_function(f, 2, {"only-one"}, rng),
               std::invalid_argument);
  SobolOptions tiny;
  tiny.base_samples = 2;
  EXPECT_THROW(analyze_function(f, 2, {"a", "b"}, rng, tiny),
               std::invalid_argument);
}

TEST(Sobol, SurrogateAnalysisFindsTheInfluentialParameter) {
  // Train a GP on samples from f(x) = strong effect on p0 only, then check
  // the surrogate-level analysis recovers the ranking.
  Space sp({Parameter::real("p0", 0.0, 1.0), Parameter::real("p1", 0.0, 1.0)});
  rng::Rng rng(9);
  const auto design = opt::latin_hypercube(60, 2, rng);
  std::vector<la::Vector> xs(design.begin(), design.end());
  la::Vector ys;
  for (const auto& u : xs) ys.push_back(std::cos(5.0 * u[0]) + 0.02 * u[1]);
  gp::GaussianProcess model(2);
  rng::Rng fit_rng(10);
  model.fit(la::Matrix::from_rows(xs), ys, fit_rng);

  SobolOptions opt;
  opt.base_samples = 512;
  rng::Rng sa_rng(11);
  const SobolResult r = analyze_surrogate(model, sp, sa_rng, opt);
  EXPECT_EQ(r.names[0], "p0");
  EXPECT_GT(r.st[0], 0.5);
  EXPECT_LT(r.st[1], 0.2);
}

class ReduceProblemTest : public ::testing::Test {
 protected:
  ReduceProblemTest() {
    problem_.name = "toy";
    problem_.task_space = Space({Parameter::integer("t", 0, 2)});
    problem_.param_space = Space({
        Parameter::integer("a", 0, 10),
        Parameter::real("b", 0.0, 1.0),
        Parameter::categorical("c", {"x", "y", "z"}),
    });
    problem_.objective = [this](const Config& task, const Config& params) {
      ++evaluations_;
      last_full_ = params;
      return static_cast<double>(params[0].as_int()) + params[1].as_double() +
             (params[2].as_string() == "y" ? 10.0 : 0.0) +
             static_cast<double>(task[0].as_int());
    };
  }

  space::TuningProblem problem_;
  mutable int evaluations_ = 0;
  mutable Config last_full_;
};

TEST_F(ReduceProblemTest, FrozenValuesAreApplied) {
  json::Json frozen = json::Json::object();
  frozen["b"] = 0.25;
  frozen["c"] = "y";
  const auto reduced = reduce_problem(problem_, {"a"}, frozen);
  EXPECT_EQ(reduced.param_space.dim(), 1u);
  const double y = reduced.objective({Value(std::int64_t{1})},
                                     {Value(std::int64_t{3})});
  EXPECT_DOUBLE_EQ(y, 3.0 + 0.25 + 10.0 + 1.0);
  EXPECT_DOUBLE_EQ(last_full_[1].as_double(), 0.25);
  EXPECT_EQ(last_full_[2].as_string(), "y");
}

TEST_F(ReduceProblemTest, UnfrozenParametersGetAFixedRandomValue) {
  const auto reduced =
      reduce_problem(problem_, {"a"}, json::Json::object(), /*seed=*/3);
  reduced.objective({Value(std::int64_t{0})}, {Value(std::int64_t{1})});
  const Config first = last_full_;
  reduced.objective({Value(std::int64_t{0})}, {Value(std::int64_t{2})});
  // The random b/c stay identical across evaluations (drawn once).
  EXPECT_TRUE(first[1] == last_full_[1]);
  EXPECT_TRUE(first[2] == last_full_[2]);
}

TEST_F(ReduceProblemTest, SeedControlsRandomFill) {
  const auto r1 =
      reduce_problem(problem_, {"a"}, json::Json::object(), /*seed=*/1);
  r1.objective({Value(std::int64_t{0})}, {Value(std::int64_t{1})});
  const Config c1 = last_full_;
  const auto r2 =
      reduce_problem(problem_, {"a"}, json::Json::object(), /*seed=*/1);
  r2.objective({Value(std::int64_t{0})}, {Value(std::int64_t{1})});
  EXPECT_TRUE(c1[1] == last_full_[1]);
  EXPECT_TRUE(c1[2] == last_full_[2]);
}

TEST_F(ReduceProblemTest, InvalidArgumentsThrow) {
  EXPECT_THROW(reduce_problem(problem_, {"nope"}, json::Json::object()),
               std::invalid_argument);
  EXPECT_THROW(reduce_problem(problem_, {}, json::Json::object()),
               std::invalid_argument);
  json::Json bad = json::Json::object();
  bad["b"] = 99.0;  // outside [0,1)
  EXPECT_THROW(reduce_problem(problem_, {"a"}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace gptc::sa
