// Tests of the SQL-like query language (paper Sec. II-B) and its
// integration with the shared repository.
#include "crowd/query_language.hpp"

#include <gtest/gtest.h>

#include "crowd/repo.hpp"
#include "db/document_store.hpp"

namespace gptc::crowd {
namespace {

using json::Json;

Json q(const char* text) { return parse_where_clause(text); }

bool hit(const char* doc, const char* where) {
  return db::matches(Json::parse(doc), q(where));
}

TEST(QueryLanguage, EmptyClauseMatchesEverything) {
  EXPECT_EQ(q(""), Json::object());
  EXPECT_EQ(q("   \t "), Json::object());
  EXPECT_TRUE(hit(R"({"a":1})", ""));
}

TEST(QueryLanguage, EqualityForms) {
  EXPECT_TRUE(hit(R"({"mb":4})", "mb = 4"));
  EXPECT_TRUE(hit(R"({"mb":4})", "mb == 4"));
  EXPECT_FALSE(hit(R"({"mb":5})", "mb = 4"));
  EXPECT_TRUE(hit(R"({"name":"Cori"})", "name = 'Cori'"));
  EXPECT_TRUE(hit(R"({"name":"Cori"})", R"(name = "Cori")"));
  EXPECT_TRUE(hit(R"({"flag":true})", "flag = TRUE"));
  EXPECT_TRUE(hit(R"({"x":null})", "x = null"));
}

TEST(QueryLanguage, Inequalities) {
  EXPECT_TRUE(hit(R"({"mb":4})", "mb != 5"));
  EXPECT_TRUE(hit(R"({"mb":4})", "mb <> 5"));
  EXPECT_TRUE(hit(R"({"mb":4})", "mb < 5"));
  EXPECT_TRUE(hit(R"({"mb":4})", "mb <= 4"));
  EXPECT_TRUE(hit(R"({"mb":4})", "mb > 3"));
  EXPECT_TRUE(hit(R"({"mb":4})", "mb >= 4"));
  EXPECT_FALSE(hit(R"({"mb":4})", "mb > 4"));
  EXPECT_TRUE(hit(R"({"t":2.5})", "t >= 2.5"));
  EXPECT_TRUE(hit(R"({"t":-3})", "t < -1"));
}

TEST(QueryLanguage, DottedPaths) {
  EXPECT_TRUE(hit(R"({"tuning_parameters":{"mb":8}})",
                  "tuning_parameters.mb >= 4"));
  EXPECT_FALSE(hit(R"({"tuning_parameters":{"mb":2}})",
                   "tuning_parameters.mb >= 4"));
}

TEST(QueryLanguage, AndOrNotPrecedence) {
  // AND binds tighter than OR.
  const char* doc = R"({"a":1,"b":2,"c":3})";
  EXPECT_TRUE(hit(doc, "a = 9 OR b = 2 AND c = 3"));
  EXPECT_FALSE(hit(doc, "a = 9 OR b = 2 AND c = 9"));
  EXPECT_TRUE(hit(doc, "(a = 9 OR b = 2) AND c = 3"));
  EXPECT_TRUE(hit(doc, "NOT a = 9"));
  EXPECT_FALSE(hit(doc, "NOT (a = 1 AND b = 2)"));
  EXPECT_TRUE(hit(doc, "NOT NOT a = 1"));
}

TEST(QueryLanguage, CaseInsensitiveKeywords) {
  const char* doc = R"({"a":1,"b":2})";
  EXPECT_TRUE(hit(doc, "a = 1 and b = 2"));
  EXPECT_TRUE(hit(doc, "a = 9 or b = 2"));
  EXPECT_TRUE(hit(doc, "not a = 9"));
}

TEST(QueryLanguage, InLists) {
  EXPECT_TRUE(hit(R"({"m":8000})", "m IN (6000, 8000, 10000)"));
  EXPECT_FALSE(hit(R"({"m":9000})", "m IN (6000, 8000, 10000)"));
  EXPECT_TRUE(hit(R"({"c":"MMD"})", "c IN ('NATURAL', 'MMD')"));
}

TEST(QueryLanguage, Exists) {
  EXPECT_TRUE(hit(R"({"tags":1})", "tags EXISTS"));
  EXPECT_FALSE(hit(R"({"x":1})", "tags EXISTS"));
  EXPECT_TRUE(hit(R"({"x":1})", "tags NOT EXISTS"));
  EXPECT_FALSE(hit(R"({"tags":1})", "tags NOT EXISTS"));
}

TEST(QueryLanguage, QuotedStringEscapes) {
  // SQL-style doubled-quote escape.
  EXPECT_TRUE(hit(R"({"s":"it's"})", "s = 'it''s'"));
  EXPECT_FALSE(hit(R"({"s":"its"})", "s = 'it''s'"));
  EXPECT_TRUE(hit(R"({"s":"a b"})", "s = 'a b'"));
  EXPECT_TRUE(hit(R"({"s":"say \"hi\""})", R"(s = "say ""hi""")"));
}

TEST(QueryLanguage, SyntaxErrors) {
  EXPECT_THROW(q("mb ="), QueryParseError);
  EXPECT_THROW(q("= 4"), QueryParseError);
  EXPECT_THROW(q("mb = 4 extra"), QueryParseError);
  EXPECT_THROW(q("(mb = 4"), QueryParseError);
  EXPECT_THROW(q("mb IN 4"), QueryParseError);
  EXPECT_THROW(q("mb IN (4"), QueryParseError);
  EXPECT_THROW(q("mb ! 4"), QueryParseError);
  EXPECT_THROW(q("mb = 'unterminated"), QueryParseError);
  EXPECT_THROW(q("mb NOT 4"), QueryParseError);
  EXPECT_THROW(q("mb = value"), QueryParseError);  // bare identifier value
  EXPECT_THROW(q("AND mb = 4"), QueryParseError);
}

TEST(QueryLanguage, ErrorsCarryPosition) {
  try {
    q("mb = 4 AND nb >");
    FAIL() << "expected QueryParseError";
  } catch (const QueryParseError& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
  }
}

TEST(QueryLanguage, RepoIntegration) {
  SharedRepo repo(9);
  const std::string key = repo.register_user("erin", "e@x.y");
  for (int mb = 1; mb <= 8; ++mb) {
    EvalUpload e;
    e.task_parameters = Json::parse(R"({"m":10000})");
    Json tuning = Json::object();
    tuning["mb"] = std::int64_t{mb};
    e.tuning_parameters = std::move(tuning);
    e.output = static_cast<double>(mb);
    Json mc = Json::object();
    mc["machine_name"] = mb % 2 == 0 ? "Cori" : "Summit";
    e.machine_configuration = std::move(mc);
    repo.upload(key, "pdgeqrf", e);
  }
  const auto hits = repo.query_where(
      key, "pdgeqrf",
      "tuning_parameters.mb >= 3 AND "
      "machine_configuration.machine_name = 'Cori'");
  ASSERT_EQ(hits.size(), 3u);  // mb = 4, 6, 8
  for (const auto& r : hits)
    EXPECT_GE(r.at("tuning_parameters").at("mb").as_int(), 3);

  EXPECT_EQ(repo.query_where(key, "pdgeqrf",
                             "tuning_parameters.mb IN (1, 2)")
                .size(),
            2u);
  EXPECT_EQ(repo.query_where(key, "other", "").size(), 0u);
  EXPECT_THROW(repo.query_where("bad-key", "pdgeqrf", ""),
               std::invalid_argument);
  EXPECT_THROW(repo.query_where(key, "pdgeqrf", "mb >"), QueryParseError);
}

TEST(QueryLanguage, RespectsAccessControl) {
  SharedRepo repo(10);
  const std::string alice = repo.register_user("alice", "a@x");
  const std::string bob = repo.register_user("bob", "b@x");
  EvalUpload priv;
  priv.task_parameters = Json::parse(R"({"m":1})");
  priv.tuning_parameters = Json::parse(R"({"mb":1})");
  priv.output = 1.0;
  priv.accessibility.level = Accessibility::Level::Private;
  repo.upload(alice, "p", priv);
  EXPECT_EQ(repo.query_where(alice, "p", "").size(), 1u);
  EXPECT_EQ(repo.query_where(bob, "p", "").size(), 0u);
}

}  // namespace
}  // namespace gptc::crowd
