#include "core/history.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tla.hpp"

namespace gptc::core {
namespace {

using space::Config;
using space::Parameter;
using space::Space;
using space::Value;

class HistoryTest : public ::testing::Test {
 protected:
  Space space_{std::vector<Parameter>{
      Parameter::integer("k", 0, 10),
      Parameter::categorical("c", {"x", "y"}),
  }};
  TaskHistory history_{Config{Value(std::int64_t{5})}};
};

TEST_F(HistoryTest, StartsEmpty) {
  EXPECT_EQ(history_.size(), 0u);
  EXPECT_EQ(history_.num_valid(), 0u);
  EXPECT_FALSE(history_.best_output().has_value());
  EXPECT_FALSE(history_.best_config().has_value());
  EXPECT_EQ(history_.task()[0].as_int(), 5);
}

TEST_F(HistoryTest, TracksBestAcrossSuccessesAndFailures) {
  history_.add({Value(std::int64_t{1}), Value("x")}, 3.0);
  history_.add({Value(std::int64_t{2}), Value("y")},
               std::numeric_limits<double>::quiet_NaN());
  history_.add({Value(std::int64_t{3}), Value("x")}, 1.5);
  history_.add({Value(std::int64_t{4}), Value("y")}, 2.0);

  EXPECT_EQ(history_.size(), 4u);
  EXPECT_EQ(history_.num_valid(), 3u);
  EXPECT_DOUBLE_EQ(history_.best_output().value(), 1.5);
  EXPECT_EQ(history_.best_config().value()[0].as_int(), 3);
}

TEST_F(HistoryTest, FailedRecordsFlagged) {
  EvalRecord ok{{Value(std::int64_t{1}), Value("x")}, 1.0};
  EvalRecord bad{{Value(std::int64_t{1}), Value("x")},
                 std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(ok.failed());
  EXPECT_TRUE(bad.failed());
  EXPECT_TRUE(EvalRecord{}.failed());
}

TEST_F(HistoryTest, ContainsMatchesExactConfig) {
  history_.add({Value(std::int64_t{1}), Value("x")}, 3.0);
  EXPECT_TRUE(history_.contains({Value(std::int64_t{1}), Value("x")}));
  EXPECT_FALSE(history_.contains({Value(std::int64_t{1}), Value("y")}));
  EXPECT_FALSE(history_.contains({Value(std::int64_t{2}), Value("x")}));
  EXPECT_FALSE(history_.contains({Value(std::int64_t{1})}));  // short config
}

TEST_F(HistoryTest, ContainsIsTrueForFailedEvaluationsToo) {
  history_.add({Value(std::int64_t{7}), Value("y")},
               std::numeric_limits<double>::quiet_NaN());
  // Failed configs must still count as "tried" so the tuner does not retry
  // a known-bad configuration.
  EXPECT_TRUE(history_.contains({Value(std::int64_t{7}), Value("y")}));
}

TEST_F(HistoryTest, ValidDataEncodesOnlySuccesses) {
  history_.add({Value(std::int64_t{0}), Value("x")}, 1.0);
  history_.add({Value(std::int64_t{9}), Value("y")},
               std::numeric_limits<double>::quiet_NaN());
  history_.add({Value(std::int64_t{9}), Value("y")}, 4.0);
  const TrainingData d = history_.valid_data(space_);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.x.rows(), 2u);
  EXPECT_EQ(d.x.cols(), 2u);
  EXPECT_DOUBLE_EQ(d.y[0], 1.0);
  EXPECT_DOUBLE_EQ(d.y[1], 4.0);
  // Encoded to bin centers: k=0 -> 0.05, k=9 -> 0.95.
  EXPECT_NEAR(d.x(0, 0), 0.05, 1e-12);
  EXPECT_NEAR(d.x(1, 0), 0.95, 1e-12);
}

TEST(SubsampleTrainingData, CapsAndPreservesRows) {
  TrainingData data;
  data.x = la::Matrix(10, 2);
  data.y.resize(10);
  for (std::size_t i = 0; i < 10; ++i) {
    data.x(i, 0) = static_cast<double>(i);
    data.x(i, 1) = 10.0 + static_cast<double>(i);
    data.y[i] = 100.0 + static_cast<double>(i);
  }
  rng::Rng rng(5);
  const TrainingData small = subsample_training_data(data, 4, rng);
  ASSERT_EQ(small.size(), 4u);
  // Each kept row must be an intact (x, y) pair from the original.
  for (std::size_t i = 0; i < 4; ++i) {
    const double id = small.x(i, 0);
    EXPECT_DOUBLE_EQ(small.x(i, 1), 10.0 + id);
    EXPECT_DOUBLE_EQ(small.y[i], 100.0 + id);
  }
  // No cap / big cap: unchanged.
  rng::Rng rng2(5);
  EXPECT_EQ(subsample_training_data(data, 0, rng2).size(), 10u);
  EXPECT_EQ(subsample_training_data(data, 50, rng2).size(), 10u);
}

}  // namespace
}  // namespace gptc::core
