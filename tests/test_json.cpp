#include "json/json.hpp"

#include <gtest/gtest.h>

namespace gptc::json {
namespace {

TEST(JsonValue, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(42).is_int());
  EXPECT_TRUE(Json(3.5).is_double());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());
  EXPECT_TRUE(Json(42).is_number());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Json(42).as_double(), 42.0);
  EXPECT_EQ(Json(4.0).as_int(), 4);  // integral double converts
  EXPECT_EQ(Json("hi").as_string(), "hi");
}

TEST(JsonValue, TypeMismatchThrows) {
  EXPECT_THROW(Json("x").as_int(), JsonError);
  EXPECT_THROW(Json(1).as_string(), JsonError);
  EXPECT_THROW(Json(1.5).as_int(), JsonError);  // non-integral double
  EXPECT_THROW(Json("x").as_array(), JsonError);
  EXPECT_THROW(Json(1).as_object(), JsonError);
  EXPECT_THROW(Json(1).as_bool(), JsonError);
}

TEST(JsonValue, ObjectAccess) {
  Json j;
  j["a"] = 1;  // null auto-converts to object
  j["b"]["c"] = "deep";
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_EQ(j.at("b").at("c").as_string(), "deep");
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("zz"));
  EXPECT_THROW(j.at("zz"), JsonError);
  EXPECT_EQ(j.get_or("zz", Json(7)).as_int(), 7);
  EXPECT_EQ(j.get_or("a", Json(7)).as_int(), 1);
  EXPECT_EQ(j.size(), 2u);
}

TEST(JsonValue, ArrayAccess) {
  Json j;
  j.push_back(1);  // null auto-converts to array
  j.push_back("two");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.at(std::size_t{1}).as_string(), "two");
  EXPECT_THROW(j.at(std::size_t{5}), JsonError);
}

TEST(JsonValue, NumericCrossTypeEquality) {
  EXPECT_TRUE(Json(1) == Json(1.0));
  EXPECT_FALSE(Json(1) == Json(1.5));
  EXPECT_TRUE(Json(2) == Json(2));
  EXPECT_FALSE(Json(1) == Json("1"));
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_TRUE(Json::parse("-17").is_int());
  EXPECT_DOUBLE_EQ(Json::parse("2.5e3").as_double(), 2500.0);
  EXPECT_TRUE(Json::parse("2.5e3").is_double());
  EXPECT_EQ(Json::parse("\"abc\"").as_string(), "abc");
}

TEST(JsonParse, NestedStructure) {
  const Json j = Json::parse(R"({
    "name": "pdgeqrf",
    "tasks": [{"m": 10000, "n": 10000}],
    "ok": true,
    "ratio": 0.25
  })");
  EXPECT_EQ(j.at("name").as_string(), "pdgeqrf");
  EXPECT_EQ(j.at("tasks").at(std::size_t{0}).at("m").as_int(), 10000);
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(j.at("ratio").as_double(), 0.25);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  // Surrogate pair: U+1F600 (emoji) -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
  // 2- and 3-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xC3\xA9");
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xE2\x82\xAC");
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{'a':1}"), JsonError);
  EXPECT_THROW(Json::parse("01x"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);       // trailing junk
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("troo"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("\"\\uD800x\""), JsonError);  // unpaired surrogate
  EXPECT_THROW(Json::parse("1."), JsonError);
  EXPECT_THROW(Json::parse("1e"), JsonError);
}

TEST(JsonParse, ErrorMessagesCarryPosition) {
  try {
    Json::parse("{\n  \"a\": troo\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":-3},"empty_arr":[],"empty_obj":{}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(Json::parse(j.dump()), j);
  EXPECT_EQ(j.dump(), text);  // keys already sorted in input
}

TEST(JsonDump, PrettyPrintRoundTrip) {
  const Json j = Json::parse(R"({"a": [1, {"b": 2}], "c": "d"})");
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), j);
}

TEST(JsonDump, DoublesStayDoubles) {
  const Json j = Json::parse("[1.0, 2, 0.5]");
  const Json round = Json::parse(j.dump());
  EXPECT_TRUE(round.at(std::size_t{0}).is_double());
  EXPECT_TRUE(round.at(std::size_t{1}).is_int());
  EXPECT_TRUE(round.at(std::size_t{2}).is_double());
}

TEST(JsonDump, ControlCharactersEscaped) {
  Json j(std::string("a\x01" "b"));
  EXPECT_EQ(j.dump(), "\"a\\u0001b\"");
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(JsonDump, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(JsonParse, LargeIntegersPreserved) {
  EXPECT_EQ(Json::parse("9007199254740993").as_int(), 9007199254740993LL);
  // Beyond int64: falls back to double instead of failing.
  EXPECT_TRUE(Json::parse("99999999999999999999999").is_double());
}

TEST(JsonParse, DeeplyNested) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "[";
  text += "1";
  for (int i = 0; i < 100; ++i) text += "]";
  Json j = Json::parse(text);
  for (int i = 0; i < 100; ++i) j = j.at(std::size_t{0});
  EXPECT_EQ(j.as_int(), 1);
}

TEST(JsonParse, WhitespaceTolerance) {
  const Json j = Json::parse("  \t\r\n { \"a\" : [ 1 , 2 ] } \n ");
  EXPECT_EQ(j.at("a").size(), 2u);
}

}  // namespace
}  // namespace gptc::json
