#include "space/space.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gptc::space {
namespace {

TEST(Parameter, RealEncodeDecodeRoundTrip) {
  const auto p = Parameter::real("x", -5.0, 10.0);
  for (double v : {-5.0, -1.2, 0.0, 3.7, 9.99}) {
    const double u = p.encode(Value(v));
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_NEAR(p.decode(u).as_double(), v, 1e-9);
  }
}

TEST(Parameter, RealClampsOutOfRange) {
  const auto p = Parameter::real("x", 0.0, 1.0);
  EXPECT_DOUBLE_EQ(p.encode(Value(-3.0)), 0.0);
  EXPECT_LT(p.decode(1.0).as_double(), 1.0);  // upper bound exclusive
  EXPECT_GE(p.decode(0.0).as_double(), 0.0);
}

TEST(Parameter, IntegerRoundTripAllValues) {
  const auto p = Parameter::integer("mb", 1, 16);  // [1,16) like Table II
  EXPECT_EQ(p.cardinality(), 15u);
  for (std::int64_t v = 1; v < 16; ++v) {
    const double u = p.encode(Value(v));
    EXPECT_EQ(p.decode(u).as_int(), v);
  }
}

TEST(Parameter, IntegerDecodeCoversAllBins) {
  const auto p = Parameter::integer("k", 0, 4);
  std::set<std::int64_t> seen;
  for (int i = 0; i <= 100; ++i) seen.insert(p.decode(i / 100.0).as_int());
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(p.decode(0.0).as_int(), 0);
  EXPECT_EQ(p.decode(1.0).as_int(), 3);
}

TEST(Parameter, CategoricalRoundTrip) {
  const auto p = Parameter::categorical("colperm", {"NATURAL", "MMD", "METIS"});
  EXPECT_EQ(p.cardinality(), 3u);
  for (const auto& c : {"NATURAL", "MMD", "METIS"}) {
    EXPECT_EQ(p.decode(p.encode(Value(c))).as_string(), c);
  }
  EXPECT_THROW(p.encode(Value("BOGUS")), std::invalid_argument);
}

TEST(Parameter, Contains) {
  const auto r = Parameter::real("x", 0.0, 1.0);
  EXPECT_TRUE(r.contains(Value(0.5)));
  EXPECT_FALSE(r.contains(Value(1.0)));  // exclusive upper
  EXPECT_FALSE(r.contains(Value("x")));
  const auto i = Parameter::integer("k", 1, 4);
  EXPECT_TRUE(i.contains(Value(std::int64_t{3})));
  EXPECT_FALSE(i.contains(Value(std::int64_t{4})));
  EXPECT_FALSE(i.contains(Value(2.5)));
  const auto c = Parameter::categorical("c", {"a", "b"});
  EXPECT_TRUE(c.contains(Value("a")));
  EXPECT_FALSE(c.contains(Value("z")));
  EXPECT_FALSE(c.contains(Value(1)));
}

TEST(Parameter, InvalidConstruction) {
  EXPECT_THROW(Parameter::real("x", 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Parameter::integer("x", 5, 5), std::invalid_argument);
  EXPECT_THROW(Parameter::categorical("x", {}), std::invalid_argument);
}

TEST(Parameter, JsonRoundTrip) {
  for (const auto& p :
       {Parameter::real("x", -1.0, 2.0), Parameter::integer("k", 0, 9),
        Parameter::categorical("c", {"u", "v"})}) {
    const Parameter q = Parameter::from_json(p.to_json());
    EXPECT_EQ(q.name(), p.name());
    EXPECT_EQ(q.kind(), p.kind());
    EXPECT_EQ(q.lower(), p.lower());
    EXPECT_EQ(q.upper(), p.upper());
    EXPECT_EQ(q.categories(), p.categories());
  }
}

TEST(Parameter, SampleStaysInRange) {
  rng::Rng rng(1);
  const auto p = Parameter::integer("k", 3, 7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const Value v = p.sample(rng);
    ASSERT_TRUE(p.contains(v));
    seen.insert(v.as_int());
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 3..6 seen
}

class SpaceTest : public ::testing::Test {
 protected:
  Space sp_{std::vector<Parameter>{
      Parameter::integer("mb", 1, 16),
      Parameter::real("thresh", 0.0, 1.0),
      Parameter::categorical("perm", {"NATURAL", "MMD", "METIS"}),
  }};
};

TEST_F(SpaceTest, EncodeDecodeRoundTrip) {
  const Config c = {Value(std::int64_t{7}), Value(0.33), Value("MMD")};
  const la::Vector u = sp_.encode(c);
  ASSERT_EQ(u.size(), 3u);
  const Config back = sp_.decode(u);
  EXPECT_EQ(back[0].as_int(), 7);
  EXPECT_NEAR(back[1].as_double(), 0.33, 1e-9);
  EXPECT_EQ(back[2].as_string(), "MMD");
}

TEST_F(SpaceTest, ContainsAndValidation) {
  EXPECT_TRUE(sp_.contains({Value(std::int64_t{1}), Value(0.0), Value("METIS")}));
  EXPECT_FALSE(sp_.contains({Value(std::int64_t{16}), Value(0.0), Value("METIS")}));
  EXPECT_FALSE(sp_.contains({Value(std::int64_t{1}), Value(0.0)}));  // short
}

TEST_F(SpaceTest, IndexOf) {
  EXPECT_EQ(sp_.index_of("thresh").value(), 1u);
  EXPECT_FALSE(sp_.index_of("nope").has_value());
}

TEST_F(SpaceTest, ConfigJsonRoundTrip) {
  const Config c = {Value(std::int64_t{3}), Value(0.5), Value("NATURAL")};
  const json::Json obj = sp_.config_to_json(c);
  EXPECT_EQ(obj.at("mb").as_int(), 3);
  const Config back = sp_.config_from_json(obj);
  EXPECT_TRUE(back[2] == c[2]);
}

TEST_F(SpaceTest, SpaceJsonRoundTrip) {
  const Space back = Space::from_json(sp_.to_json());
  EXPECT_EQ(back.dim(), 3u);
  EXPECT_EQ(back[2].categories().size(), 3u);
}

TEST_F(SpaceTest, SampleIsValid) {
  rng::Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sp_.contains(sp_.sample(rng)));
}

TEST_F(SpaceTest, DuplicateNamesRejected) {
  EXPECT_THROW(Space({Parameter::real("x", 0, 1), Parameter::real("x", 0, 2)}),
               std::invalid_argument);
}

TEST_F(SpaceTest, SizeMismatchThrows) {
  EXPECT_THROW(sp_.encode({Value(1)}), std::invalid_argument);
  EXPECT_THROW(sp_.decode({0.5}), std::invalid_argument);
}

TEST(TuningProblemTest, ProblemSpaceJson) {
  TuningProblem p;
  p.name = "demo";
  p.task_space = Space({Parameter::real("t", 0.0, 10.0)});
  p.param_space = Space({Parameter::real("x", 0.0, 1.0)});
  p.output_name = "y";
  const json::Json j = p.problem_space_json();
  EXPECT_EQ(j.at("input_space").at(std::size_t{0}).at("name").as_string(), "t");
  EXPECT_EQ(j.at("output_space").at(std::size_t{0}).at("name").as_string(), "y");
}

}  // namespace
}  // namespace gptc::space
