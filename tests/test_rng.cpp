#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gptc::rng {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitByTagIsDeterministic) {
  Rng root(7);
  Rng a = root.split("surrogate");
  Rng b = root.split("surrogate");
  EXPECT_EQ(a(), b());
}

TEST(Rng, SplitStreamsAreIndependentOfParentUse) {
  Rng root(7);
  Rng a = root.split("x");
  root();  // consuming the parent must not change future splits
  Rng b = Rng(7).split("x");
  EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentTagsGiveDifferentStreams) {
  Rng root(7);
  EXPECT_NE(root.split("a")(), root.split("b")());
  EXPECT_NE(root.split(std::uint64_t{1})(), root.split(std::uint64_t{2})());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng r(6);
  EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng r(6);
  EXPECT_THROW(r.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(8);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng r(9);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognoiseHasMedianAroundOne) {
  Rng r(10);
  const int n = 10001;
  std::vector<double> v(n);
  for (auto& x : v) x = r.lognoise(0.05);
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[n / 2], 1.0, 0.01);
  for (double x : v) ASSERT_GT(x, 0.0);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng r(11);
  std::vector<double> w = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[r.categorical(w)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / 20000.0, 0.75, 0.02);
}

TEST(Rng, CategoricalDegenerateWeight) {
  Rng r(12);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.categorical(w), 1u);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng r(13);
  EXPECT_THROW(r.categorical({}), std::invalid_argument);
  EXPECT_THROW(r.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng r(14);
  const auto p = r.permutation(50);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng r(15);
  EXPECT_TRUE(r.permutation(0).empty());
  const auto p = r.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

TEST(Rng, HashTagDistinguishesStrings) {
  EXPECT_NE(hash_tag("a"), hash_tag("b"));
  EXPECT_NE(hash_tag(""), hash_tag("a"));
  EXPECT_EQ(hash_tag("abc"), hash_tag("abc"));
}

}  // namespace
}  // namespace gptc::rng
