// Tests of the combined surrogates used by the weighted-sum and stacking
// TLA algorithms (paper Sec. V-B/V-D).
#include "core/combined.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gptc::core {
namespace {

/// Deterministic fake surrogate: constant mean/stddev.
class ConstSurrogate final : public gp::Surrogate {
 public:
  ConstSurrogate(double mean, double stddev, std::size_t dim = 1)
      : mean_(mean), stddev_(stddev), dim_(dim) {}
  gp::Prediction predict(const la::Vector&) const override {
    gp::Prediction p;
    p.mean = mean_;
    p.variance = stddev_ * stddev_;
    return p;
  }
  std::size_t dim() const override { return dim_; }

 private:
  double mean_, stddev_;
  std::size_t dim_;
};

gp::SurrogatePtr make_const(double mean, double stddev, std::size_t dim = 1) {
  return std::make_shared<ConstSurrogate>(mean, stddev, dim);
}

TEST(WeightedSurrogate, EqualWeightsAverageMeans) {
  const auto ws = WeightedSurrogate::equal({make_const(2.0, 1.0),
                                            make_const(4.0, 1.0)});
  const gp::Prediction p = ws->predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 3.0);  // weights normalized to 1/2 each
  EXPECT_NEAR(p.stddev(), 1.0, 1e-12);
}

TEST(WeightedSurrogate, WeightsAreNormalized) {
  // Paper Eq. (1): mean is the weighted sum; this implementation
  // normalizes weights so the output stays on the models' scale.
  WeightedSurrogate ws({make_const(2.0, 1.0), make_const(4.0, 1.0)},
                       {3.0, 1.0});
  EXPECT_DOUBLE_EQ(ws.predict({0.0}).mean, 0.75 * 2.0 + 0.25 * 4.0);
  EXPECT_DOUBLE_EQ(ws.weights()[0], 0.75);
}

TEST(WeightedSurrogate, GeometricStddev) {
  // Paper Eq. (2): sigma = prod sigma_i^{w_i}; with weights 1/2, 1/2 and
  // sigmas 1 and 4 => sigma = 2.
  const auto ws =
      WeightedSurrogate::equal({make_const(0.0, 1.0), make_const(0.0, 4.0)});
  EXPECT_NEAR(ws->predict({0.0}).stddev(), 2.0, 1e-12);
}

TEST(WeightedSurrogate, ZeroSigmaMemberCollapsesSigma) {
  const auto ws =
      WeightedSurrogate::equal({make_const(0.0, 0.0), make_const(0.0, 4.0)});
  EXPECT_DOUBLE_EQ(ws->predict({0.0}).variance, 0.0);
}

TEST(WeightedSurrogate, ZeroWeightMemberIsIgnoredInSigma) {
  WeightedSurrogate ws({make_const(1.0, 0.0), make_const(3.0, 2.0)},
                       {0.0, 1.0});
  const gp::Prediction p = ws.predict({0.0});
  EXPECT_DOUBLE_EQ(p.mean, 3.0);
  EXPECT_NEAR(p.stddev(), 2.0, 1e-12);  // zero-sigma member has zero weight
}

TEST(WeightedSurrogate, ValidatesInputs) {
  EXPECT_THROW(WeightedSurrogate({}, {}), std::invalid_argument);
  EXPECT_THROW(WeightedSurrogate({make_const(0, 1)}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(WeightedSurrogate({make_const(0, 1)}, {-1.0}),
               std::invalid_argument);
  EXPECT_THROW(WeightedSurrogate({make_const(0, 1)}, {0.0}),
               std::invalid_argument);
  EXPECT_THROW(
      WeightedSurrogate({make_const(0, 1, 1), make_const(0, 1, 2)},
                        {1.0, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(WeightedSurrogate({nullptr}, {1.0}), std::invalid_argument);
}

class ResidualStackTest : public ::testing::Test {
 protected:
  static la::Matrix grid(int n) {
    std::vector<la::Vector> xs;
    for (int i = 0; i < n; ++i) xs.push_back({(i + 0.5) / n});
    return la::Matrix::from_rows(xs);
  }
  static la::Vector sample(int n, double (*f)(double)) {
    la::Vector y;
    for (int i = 0; i < n; ++i) y.push_back(f((i + 0.5) / n));
    return y;
  }

  gp::GpOptions options_;
  rng::Rng rng_{31};
};

TEST_F(ResidualStackTest, SingleLayerActsLikeAGp) {
  ResidualStack stack(1);
  stack.add_layer(grid(15), sample(15, [](double x) { return std::sin(5 * x); }),
                  options_, rng_);
  EXPECT_EQ(stack.num_layers(), 1u);
  EXPECT_NEAR(stack.predict({0.5}).mean, std::sin(2.5), 0.05);
}

TEST_F(ResidualStackTest, SecondLayerLearnsTheResidual) {
  // Layer 1: f(x) = sin(5x); layer 2 observes f(x) + 2 — the stack's mean
  // must track the shifted function.
  ResidualStack stack(1);
  stack.add_layer(grid(15), sample(15, [](double x) { return std::sin(5 * x); }),
                  options_, rng_);
  stack.add_layer(grid(12),
                  sample(12, [](double x) { return std::sin(5 * x) + 2.0; }),
                  options_, rng_);
  EXPECT_EQ(stack.num_layers(), 2u);
  for (double x : {0.2, 0.5, 0.8})
    EXPECT_NEAR(stack.predict({x}).mean, std::sin(5 * x) + 2.0, 0.15)
        << "at x=" << x;
}

TEST_F(ResidualStackTest, CopyIsIndependentForNewLayers) {
  // The stacking TLA copies the source stack per iteration and adds a
  // target layer; the copy must not mutate the original.
  ResidualStack source(1);
  source.add_layer(grid(10), sample(10, [](double) { return 1.0; }),
                   options_, rng_);
  ResidualStack copy = source;
  copy.add_layer(grid(8), sample(8, [](double) { return 5.0; }), options_,
                 rng_);
  EXPECT_EQ(source.num_layers(), 1u);
  EXPECT_EQ(copy.num_layers(), 2u);
  EXPECT_NEAR(source.predict({0.5}).mean, 1.0, 0.05);
  EXPECT_NEAR(copy.predict({0.5}).mean, 5.0, 0.2);
}

TEST_F(ResidualStackTest, SigmaUsesSampleCountBeta) {
  // With a huge new layer, beta -> 1 and the stack stddev approaches the
  // new layer's.
  ResidualStack stack(1);
  stack.add_layer(grid(4), sample(4, [](double) { return 0.0; }), options_,
                  rng_);
  const double sigma_one = stack.predict({0.5}).stddev();
  stack.add_layer(grid(40), sample(40, [](double) { return 0.0; }), options_,
                  rng_);
  const double sigma_two = stack.predict({0.5}).stddev();
  // 40-sample layer at x=0.5 is confident: stddev must shrink.
  EXPECT_LT(sigma_two, sigma_one);
}

TEST_F(ResidualStackTest, ValidatesInputs) {
  ResidualStack stack(2);
  EXPECT_THROW(stack.predict({0.5, 0.5}), std::logic_error);
  EXPECT_THROW(stack.add_layer(la::Matrix(), la::Vector(), options_, rng_),
               std::invalid_argument);
  EXPECT_THROW(stack.add_layer(grid(5), la::Vector{1, 2, 3}, options_, rng_),
               std::invalid_argument);  // shape mismatch
  EXPECT_THROW(stack.add_layer(grid(5), la::Vector(5, 1.0), options_, rng_),
               std::invalid_argument);  // dim mismatch (grid is 1-d)
}

}  // namespace
}  // namespace gptc::core
