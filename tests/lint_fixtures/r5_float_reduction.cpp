// Fixture: R5 float-reduction. A shared double accumulator inside a
// parallel body: even under a lock the sum depends on thread interleaving
// because FP addition is non-associative. Must be reported.
#include <cstddef>
#include <vector>

double sum_all(const std::vector<double>& xs) {
  double sum = 0.0;
  parallel_for(nullptr, xs.size(), [&](std::size_t i) {
    sum += xs[i];  // seeded violation: R5
  });
  return sum;
}
