// Fixture: R10 guarded-by. `total_` is annotated as guarded by `mu_`;
// `locked_add` takes the lock before touching it (clean) while `racy_add`
// writes the member with no lock held at all. Cross-file mode must flag the
// unguarded write and nothing else.
#include <mutex>

class Counters {
 public:
  void locked_add(long delta);
  void racy_add(long delta);

 private:
  std::mutex mu_;
  // guarded_by: mu_
  long total_ = 0;
};

void Counters::locked_add(long delta) {
  std::lock_guard<std::mutex> lock(mu_);
  total_ += delta;
}

void Counters::racy_add(long delta) {
  total_ += delta;  // seeded violation: R10 (no lock held)
}
