// Seeded R12 violation: a wire-derived length crosses one call hop and
// reaches a resize with no bound ever applied. recv_exact taints the
// header buffer; decode_len has no definition in the tree, so its result
// conservatively carries its argument's taint; grow()'s summary says its
// second parameter flows into an allocation count.
#include <vector>

struct Sock {
  int recv_exact(char* buf, unsigned n);
};

unsigned decode_len(const char* buf);  // no definition: taint passes through

void grow(std::vector<char>& v, unsigned n) { v.resize(n); }

void handle(Sock& s) {
  char header[8];
  s.recv_exact(header, 8);
  std::vector<char> body;
  grow(body, decode_len(header));  // attacker-declared allocation count
}
