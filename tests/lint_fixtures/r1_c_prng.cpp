// Fixture: R1 nondeterministic-source. The std::rand() call below must be
// reported — randomness outside src/rng/ and tools/ breaks replayability of
// crowd records. (Fixtures are linted, never compiled.)
#include <cstdlib>

int jitter_percent() {
  return std::rand() % 100;  // seeded violation: R1
}
