// Fixture: R6 declaring header. The unordered member below is legal to
// declare — R6 fires only where another TU iterates it (r6_cross_iter.cpp).
// Per-file R2 cannot see that use site, which is exactly the gap R6 closes.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

class Registry {
 public:
  void merge_names(std::string& out) const;  // defined in r6_cross_iter.cpp
  std::size_t size() const { return entries_.size(); }  // no iteration: fine
 private:
  std::unordered_map<std::string, int> entries_;
};
