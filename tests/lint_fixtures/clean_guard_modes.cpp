// Fixture: clean shared_mutex discipline. Reads take the lock in shared
// mode, writes take it exclusive, the upgrade path releases its shared lock
// before re-acquiring exclusively (never writes under the shared hold), and
// one deliberate unlocked read carries an explicit escape with a reason.
// Cross-file mode must report nothing in this file.
#include <shared_mutex>

class Registry {
 public:
  int read_value() const;
  void set_value(int v);
  void upgrade_value(int delta);
  int racy_hint() const;

 private:
  mutable std::shared_mutex mu_;
  // guarded_by: mu_
  int value_ = 0;
};

int Registry::read_value() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return value_;
}

void Registry::set_value(int v) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  value_ = v;
}

void Registry::upgrade_value(int delta) {
  int snapshot = 0;
  {
    std::shared_lock<std::shared_mutex> reader(mu_);
    snapshot = value_;
  }
  std::unique_lock<std::shared_mutex> writer(mu_);
  value_ = snapshot + delta;
}

int Registry::racy_hint() const {
  // guard-ok: approximate read for monitoring; staleness is acceptable
  return value_;
}
