// Fixture: clean file mirroring the storage-engine index idiom
// (src/db/engine/index.hpp). Ordered std::map iteration — postings walks,
// lower_bound range scans, and shard-map sweeps — is deterministic by
// construction and must NOT trip R2, which only concerns unordered
// containers. Mentions of std::unordered_map in comments are fine too.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

struct Key {
  int rank = 0;
  double num = 0.0;
  bool operator<(const Key& o) const {
    return rank != o.rank ? rank < o.rank : num < o.num;
  }
};

// Full-postings walk: std::map iterates in key order, so the collected id
// list is the same on every run (unlike an std::unordered_map walk).
std::vector<std::int64_t> all_ids(
    const std::map<Key, std::vector<std::int64_t>>& postings) {
  std::vector<std::int64_t> ids;
  for (const auto& [key, bucket] : postings) {
    (void)key;
    ids.insert(ids.end(), bucket.begin(), bucket.end());
  }
  return ids;
}

// Bounded range scan, the planner's $gt/$lt path: iterator order is the
// key order, deterministic regardless of insertion history.
std::size_t count_in_range(
    const std::map<Key, std::vector<std::int64_t>>& postings, const Key& lo,
    const Key& hi) {
  std::size_t n = 0;
  for (auto it = postings.lower_bound(lo);
       it != postings.end() && it->first < hi; ++it) {
    n += it->second.size();
  }
  return n;
}

// Shard-map sweep, the engine's sync() shape.
std::vector<std::string> shard_names(
    const std::map<std::string, std::uint64_t>& wal_bytes) {
  std::vector<std::string> names;
  for (const auto& [name, bytes] : wal_bytes) {
    if (bytes > 0) names.push_back(name);
  }
  return names;
}
