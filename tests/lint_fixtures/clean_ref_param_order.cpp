// Clean fixture: the by-reference helper from r7_ref_param_inversion.cpp,
// but every caller agrees on the argument order. Placeholder substitution
// must keep the two call sites' identities straight — before it existed,
// both parameters normalized to one file-qualified name shared across every
// caller, and helpers like this produced false lock-order cycles.
#include <mutex>

class RefOrdered {
 public:
  void one();
  void two();

 private:
  static void pair_step(std::mutex& first, std::mutex& second);
  std::mutex a_;
  std::mutex b_;
};

void RefOrdered::pair_step(std::mutex& first, std::mutex& second) {
  std::lock_guard<std::mutex> outer(first);
  std::lock_guard<std::mutex> inner(second);
}

void RefOrdered::one() {
  pair_step(a_, b_);  // a_ then b_
}

void RefOrdered::two() {
  pair_step(a_, b_);  // same order: no inversion, nothing to flag
}
