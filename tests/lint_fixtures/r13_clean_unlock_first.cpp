// Clean counterpart of r13_fsync_under_lock.cpp: the state update happens
// under the lock, the durability syscall after releasing it. The brace
// closing the lock scope and the fsync line are deliberately adjacent —
// the mutation test swaps them to prove R13 re-fires when the I/O moves
// inside the critical section.
#include <mutex>
#include <unistd.h>

class Journal {
 public:
  void flush(int n) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      dirty_ += n;
    }
    ::fsync(fd_);
  }

 private:
  std::mutex mu_;
  int dirty_ = 0;  // guarded_by: mu_
  int fd_ = -1;
};
