// Clean counterpart of r12_taint_resize.cpp: the same wire-to-allocation
// flows, but every one is bounded first — by a comparison against a named
// maximum, or by an explicit taint-ok annotation where the bound lives
// elsewhere. Must produce zero findings.
#include <string>
#include <vector>

inline constexpr unsigned kMaxFrame = 1u << 20;

struct Sock {
  int recv_exact(char* buf, unsigned n);
};

unsigned decode_len(const char* buf);  // no definition: taint passes through

void handle_bounded(Sock& s) {
  char header[8];
  s.recv_exact(header, 8);
  const unsigned n = decode_len(header);
  if (n > kMaxFrame) return;  // the sanitizing comparison
  std::string body;
  body.assign(n, '\0');
}

void handle_annotated(Sock& s) {
  char header[8];
  s.recv_exact(header, 8);
  std::vector<char> scratch;
  // taint-ok: decode_len is an 8-byte field read, bounded by the pool cap upstream
  scratch.resize(decode_len(header));
}
