// Fixture: R3 unindexed-capture-write. `last` is captured by reference and
// assigned without being indexed by the loop variable — a data race whose
// final value depends on scheduling. Must be reported.
#include <cstddef>
#include <vector>

void record_last(std::vector<int>& out, std::size_t n) {
  int last = 0;
  parallel_for(nullptr, n, [&](std::size_t i) {
    last = static_cast<int>(i);  // seeded violation: R3
    out[i] = last;
  });
}
