// Fixture: R2 unordered-iteration. The range-for below feeds an
// accumulation whose value depends on bucket order; it carries no
// `// lint: unordered-ok` annotation, so it must be reported.
#include <string>
#include <unordered_map>

double total_weight(const std::unordered_map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& [name, w] : weights) {  // seeded violation: R2
    sum += w * (name.empty() ? 0.5 : 1.0);
  }
  return sum;
}
