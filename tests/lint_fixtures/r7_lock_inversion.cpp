// Fixture: R7 lock-order. `forward` takes a_ then b_; `backward` takes b_
// then a_. Each function is locally consistent — only the whole-program
// acquires-while-holding graph sees the cycle, which is a deadlock when the
// two run on different threads. Cross-file mode must report the inversion.
#include <mutex>

class Inverted {
 public:
  void forward();
  void backward();

 private:
  std::mutex a_;
  std::mutex b_;
};

void Inverted::forward() {
  std::lock_guard<std::mutex> la(a_);
  std::lock_guard<std::mutex> lb(b_);  // seeded violation: R7 (a_ then b_)
}

void Inverted::backward() {
  std::lock_guard<std::mutex> lb(b_);
  std::lock_guard<std::mutex> la(a_);  // opposite order (b_ then a_)
}
