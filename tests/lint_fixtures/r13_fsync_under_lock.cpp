// Seeded R13 violation: a durability syscall inside a guarded critical
// section. mu_ is a declared guard (the guarded_by on dirty_), so every
// writer queues behind the disk while the lock is held.
#include <mutex>
#include <unistd.h>

class Logger {
 public:
  void log(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_ += n;
    ::fsync(fd_);  // blocking while Logger::mu_ is held
  }

 private:
  std::mutex mu_;
  int dirty_ = 0;  // guarded_by: mu_
  int fd_ = -1;
};
