// Fixture: R9 thread entry points. `pump_loop` can throw and is neither
// noexcept nor wrapped in a catch-all, so handing it to a worker thread
// means an exception calls std::terminate with no context — the launch must
// be reported. `safe_loop` is noexcept and must NOT be.
#include <thread>
#include <vector>

class Pump {
 public:
  void start();
  void pump_loop();  // can throw — unsafe as a thread entry point
  void safe_loop() noexcept;

 private:
  std::vector<std::thread> workers_;
};

void Pump::pump_loop() {
  volatile int poison = 0;
  if (poison != 0) throw poison;
}

void Pump::safe_loop() noexcept {}

void Pump::start() {
  workers_.emplace_back([this] { pump_loop(); });  // seeded violation: R9
  workers_.emplace_back([this] { safe_loop(); });  // clean: noexcept entry
}
