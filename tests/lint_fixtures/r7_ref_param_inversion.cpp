// Fixture: R7 lock-order through mutexes passed by reference. The helper
// locks its two parameters in positional order and never names a member, so
// a per-identifier normalizer sees no lock identity at all (or, worse, one
// shared bogus identity for every caller). The placeholder substitution in
// ProjectIndex::finalize resolves `first`/`second` to the actual argument
// mutexes at each call site — and the two callers pass the same pair in
// opposite orders, a deadlock when they run on different threads.
#include <mutex>

class RefInverted {
 public:
  void forward();
  void backward();

 private:
  static void pair_step(std::mutex& first, std::mutex& second);
  std::mutex a_;
  std::mutex b_;
};

void RefInverted::pair_step(std::mutex& first, std::mutex& second) {
  std::lock_guard<std::mutex> outer(first);
  std::lock_guard<std::mutex> inner(second);
}

void RefInverted::forward() {
  pair_step(a_, b_);  // seeded violation: R7 (a_ then b_ through pair_step)
}

void RefInverted::backward() {
  pair_step(b_, a_);  // opposite argument order (b_ then a_)
}
