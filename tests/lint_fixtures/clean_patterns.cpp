// Fixture: clean file. Exercises the patterns the rules must NOT flag —
// indexed slot writes, body-local declarations, an annotated
// order-independent unordered iteration, and strings/comments that merely
// mention forbidden names.
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

// A comment mentioning rand() and std::random_device must not trip R1.
const char* kDocs = "never call srand() or steady_clock::now() here";

int count_positive(const std::unordered_map<std::string, int>& histogram) {
  int n = 0;
  // lint: unordered-ok order-independent count; += over ints commutes
  for (const auto& kv : histogram) {
    if (kv.second > 0) ++n;
  }
  return n;
}

void scale_all(std::vector<double>& out, std::size_t n) {
  parallel_for(nullptr, n, [&](std::size_t i) {
    const double v = static_cast<double>(i) * 0.5;  // body-local: fine
    out[i] = v;                                     // indexed write: fine
  });
}
