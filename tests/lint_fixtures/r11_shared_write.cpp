// Fixture: R11 shared-lock write. `stats_` is guarded by a shared_mutex;
// `snapshot_stats` holds it in shared mode to read (clean) while `bump`
// writes the member under the same shared-mode lock — mutual exclusion
// against other readers is absent, so the write races. Cross-file mode must
// flag the shared-mode write and nothing else.
#include <shared_mutex>

class StatTable {
 public:
  int snapshot_stats() const;
  void bump();

 private:
  mutable std::shared_mutex mu_;
  // guarded_by: mu_
  int stats_ = 0;
};

int StatTable::snapshot_stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return stats_;
}

void StatTable::bump() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  stats_ += 1;  // seeded violation: R11 (write under shared lock)
}
