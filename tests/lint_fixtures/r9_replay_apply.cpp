// Fixture: R9 WAL replay application. `recover_fixture` drives replay_wal
// and applies each record with a bare apply_op — apply_op can throw and is
// neither noexcept nor catch-all wrapped, so a malformed record escapes
// recovery with no collection context. The apply site must be reported.
#include <string>
#include <vector>

struct ReplayRecord {
  std::string payload;
};

struct Col {
  void apply_op(const std::string& payload);
};

std::vector<ReplayRecord> replay_wal(const std::string& path) {
  return {ReplayRecord{path}};
}

void Col::apply_op(const std::string& payload) {
  if (payload.empty()) throw payload;
}

void recover_fixture(Col& c, const std::string& path) {
  for (const ReplayRecord& rec : replay_wal(path)) {
    c.apply_op(rec.payload);  // seeded violation: R9 — bare apply
  }
}
