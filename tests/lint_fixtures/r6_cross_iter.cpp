// Fixture: R6 cross-tu-unordered. This TU declares no unordered container
// itself, so per-file R2 has nothing to flag — but `entries_` is declared
// std::unordered_map in r6_registry.hpp, and iterating it here makes the
// merged string depend on bucket order. Cross-file mode must report it.
#include <string>

#include "r6_registry.hpp"

void Registry::merge_names(std::string& out) const {
  for (const auto& [name, count] : entries_) {  // seeded violation: R6
    out += name;
    out += static_cast<char>('0' + (count % 10));
  }
}
