// Fixture: R8 durability. The marker file is created and written but the
// function returns without fsync/fdatasync/sync_parent_dir anywhere on the
// path — after a crash the file (and on some filesystems its directory
// entry) can vanish even though the caller was told it was written. The
// fixture lives under src/db/engine/ because R8 applies to the engine layer.
#include <fcntl.h>
#include <unistd.h>

int create_marker(const char* path) {
  const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return -1;
  (void)::write(fd, "x", 1);
  ::close(fd);
  return 0;  // seeded violation: R8 — never synced
}
