// Fixture: clean R8 counterpart to r8_missing_sync.cpp. The fsync lives in
// a helper one call away — R8's reachability is transitive over the call
// graph, so this must NOT be reported.
#include <fcntl.h>
#include <unistd.h>

namespace {
void sync_fd(int fd) { ::fsync(fd); }
}  // namespace

int write_marker_durably(const char* path) {
  const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return -1;
  (void)::write(fd, "x", 1);
  sync_fd(fd);  // reaches fsync through the helper
  ::close(fd);
  return 0;
}
