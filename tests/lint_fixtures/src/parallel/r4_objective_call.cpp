// Fixture: R4 objective-in-parallel. This file sits under a src/parallel/
// path, so calling the `evaluate` entry point from it must be reported:
// the substrate stays application-agnostic and the user objective only
// ever runs on the calling thread.
#include <cstddef>

double evaluate(const double* x, std::size_t n);

double run_unit(const double* x, std::size_t n) {
  return evaluate(x, n);  // seeded violation: R4
}
