#include "opt/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gptc::opt {
namespace {

double sphere(const la::Vector& x) {
  double s = 0.0;
  for (double v : x) s += (v - 0.3) * (v - 0.3);
  return s;
}

double rosenbrock(const la::Vector& x) {
  double s = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    s += 100.0 * a * a + b * b;
  }
  return s;
}

TEST(NelderMead, MinimizesSphere) {
  const Result r = nelder_mead(sphere, {0.9, 0.9, 0.9});
  EXPECT_LT(r.value, 1e-6);
  for (double v : r.x) EXPECT_NEAR(v, 0.3, 1e-3);
}

TEST(NelderMead, MinimizesRosenbrock2d) {
  NelderMeadOptions opt;
  opt.max_evaluations = 2000;
  const Result r = nelder_mead(rosenbrock, {-0.5, 0.5}, opt);
  EXPECT_LT(r.value, 1e-4);
  EXPECT_NEAR(r.x[0], 1.0, 0.05);
  EXPECT_NEAR(r.x[1], 1.0, 0.05);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  NelderMeadOptions opt;
  opt.max_evaluations = 25;
  const Result r = nelder_mead(rosenbrock, {0.0, 0.0}, opt);
  // The budget caps main-loop evaluations; a final shrink step may add at
  // most dim more.
  EXPECT_LE(r.evaluations, 27);
}

TEST(NelderMead, ClampsToUnitCube) {
  NelderMeadOptions opt;
  opt.clamp_unit_cube = true;
  // Minimum outside the cube at (1.5, 1.5): must converge to the corner.
  const auto f = [](const la::Vector& x) {
    return (x[0] - 1.5) * (x[0] - 1.5) + (x[1] - 1.5) * (x[1] - 1.5);
  };
  const Result r = nelder_mead(f, {0.5, 0.5}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 0.02);
  EXPECT_NEAR(r.x[1], 1.0, 0.02);
}

TEST(NelderMead, SurvivesNonFiniteObjective) {
  const auto f = [](const la::Vector& x) {
    if (x[0] < 0.2) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 0.5) * (x[0] - 0.5);
  };
  const Result r = nelder_mead(f, {0.8});
  EXPECT_NEAR(r.x[0], 0.5, 1e-3);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(nelder_mead(sphere, {}), std::invalid_argument);
}

TEST(MultistartNelderMead, PicksBestBasin) {
  // Two basins; global at 0.8 (depth -2), local at 0.2 (depth -1).
  const auto f = [](const la::Vector& x) {
    const double a = -std::exp(-50.0 * (x[0] - 0.2) * (x[0] - 0.2));
    const double b = -2.0 * std::exp(-50.0 * (x[0] - 0.8) * (x[0] - 0.8));
    return a + b;
  };
  const Result r = multistart_nelder_mead(f, {{0.15}, {0.85}});
  EXPECT_NEAR(r.x[0], 0.8, 0.01);
  EXPECT_THROW(multistart_nelder_mead(f, {}), std::invalid_argument);
}

TEST(DifferentialEvolution, MinimizesMultimodalFunction) {
  // Rastrigin-flavoured function over [0,1]^2, minimum at (0.7, 0.7).
  const auto f = [](const la::Vector& x) {
    double s = 0.0;
    for (double v : x) {
      const double d = v - 0.7;
      s += d * d - 0.05 * std::cos(20.0 * d);
    }
    return s;
  };
  rng::Rng rng(3);
  DifferentialEvolutionOptions opt;
  opt.population = 30;
  opt.generations = 60;
  const Result r = differential_evolution(f, 2, rng, opt);
  EXPECT_NEAR(r.x[0], 0.7, 0.02);
  EXPECT_NEAR(r.x[1], 0.7, 0.02);
}

TEST(DifferentialEvolution, SeedsJoinPopulation) {
  // With the optimum passed as a seed, the result can't be worse.
  rng::Rng rng(4);
  DifferentialEvolutionOptions opt;
  opt.generations = 0;  // no evolution: only the initial population counts
  opt.seeds = {{0.3, 0.3, 0.3}};
  const Result r = differential_evolution(sphere, 3, rng, opt);
  EXPECT_LE(r.value, 1e-12);
}

TEST(DifferentialEvolution, StaysInUnitCube) {
  rng::Rng rng(5);
  const auto f = [](const la::Vector& x) {
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    return -x[0];
  };
  const Result r = differential_evolution(f, 2, rng);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
}

TEST(DifferentialEvolution, InvalidInputsThrow) {
  rng::Rng rng(6);
  EXPECT_THROW(differential_evolution(sphere, 0, rng), std::invalid_argument);
  DifferentialEvolutionOptions opt;
  opt.seeds = {{0.1, 0.2}};  // wrong dim
  EXPECT_THROW(differential_evolution(sphere, 3, rng, opt),
               std::invalid_argument);
}

TEST(Sampling, RandomDesignShapeAndRange) {
  rng::Rng rng(7);
  const auto pts = random_design(50, 4, rng);
  EXPECT_EQ(pts.size(), 50u);
  for (const auto& p : pts) {
    EXPECT_EQ(p.size(), 4u);
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(Sampling, LatinHypercubeStratifies) {
  rng::Rng rng(8);
  const std::size_t n = 20;
  const auto pts = latin_hypercube(n, 2, rng);
  // Exactly one point per bin in each dimension.
  for (std::size_t d = 0; d < 2; ++d) {
    std::vector<int> bins(n, 0);
    for (const auto& p : pts)
      ++bins[std::min(n - 1, static_cast<std::size_t>(p[d] * n))];
    for (int b : bins) EXPECT_EQ(b, 1);
  }
}

TEST(Sampling, ScrambledHaltonIsLowDiscrepancy) {
  rng::Rng rng(9);
  const std::size_t n = 512;
  const auto pts = scrambled_halton(n, 2, rng);
  // Check 4x4 stratification: each cell should hold roughly n/16 points.
  int cells[4][4] = {};
  for (const auto& p : pts)
    ++cells[std::min(3, static_cast<int>(p[0] * 4))]
           [std::min(3, static_cast<int>(p[1] * 4))];
  for (auto& row : cells)
    for (int c : row) EXPECT_NEAR(c, 32, 12);
}

TEST(Sampling, ScrambledHaltonDeterministicPerSeed) {
  rng::Rng r1(10), r2(10), r3(11);
  const auto a = scrambled_halton(8, 3, r1);
  const auto b = scrambled_halton(8, 3, r2);
  const auto c = scrambled_halton(8, 3, r3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Sampling, ScrambledHaltonHighDimSupported) {
  rng::Rng rng(12);
  const auto pts = scrambled_halton(16, 24, rng);  // Hypre Saltelli needs 2*12
  EXPECT_EQ(pts.front().size(), 24u);
  EXPECT_THROW(scrambled_halton(4, 65, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gptc::opt
