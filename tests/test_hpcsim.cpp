#include "hpcsim/machine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gptc::hpcsim {
namespace {

TEST(MachineModel, CoriModelsMatchPublishedTopology) {
  const auto hsw = MachineModel::cori_haswell();
  EXPECT_EQ(hsw.cores_per_node, 32);  // 2 x 16-core Xeon E5-2698v3
  EXPECT_DOUBLE_EQ(hsw.mem_per_node, 128e9);
  const auto knl = MachineModel::cori_knl();
  EXPECT_EQ(knl.cores_per_node, 68);  // Xeon Phi 7250
  // KNL: weaker cores, more of them, faster near-memory.
  EXPECT_LT(knl.flops_per_core, hsw.flops_per_core);
  EXPECT_GT(knl.mem_bw_per_node, hsw.mem_bw_per_node);
}

TEST(MachineModel, MachineConfigurationJson) {
  const auto j = MachineModel::cori_haswell().machine_configuration(8);
  EXPECT_EQ(j.at("machine_name").as_string(), "Cori");
  EXPECT_EQ(j.at("partition").as_string(), "haswell");
  EXPECT_EQ(j.at("nodes").as_int(), 8);
  EXPECT_EQ(j.at("cores").as_int(), 32);
}

TEST(Allocation, TotalRanks) {
  Allocation a{MachineModel::cori_haswell(), 8, 32};
  EXPECT_EQ(a.total_ranks(), 256);
}

TEST(Allocation, RankFlopsComputeBoundWhenIntensityHigh) {
  Allocation a{MachineModel::cori_haswell(), 1, 1};
  // bytes_per_flop = 0: pure compute bound at the kernel efficiency.
  EXPECT_DOUBLE_EQ(a.rank_flops(1.0, 0.0),
                   a.machine.flops_per_core);
  EXPECT_DOUBLE_EQ(a.rank_flops(0.5, 0.0), 0.5 * a.machine.flops_per_core);
}

TEST(Allocation, RankFlopsBandwidthBoundUnderContention) {
  const auto m = MachineModel::cori_haswell();
  Allocation one{m, 1, 1}, full{m, 1, 32};
  // Streaming kernel (8 bytes/flop): a single rank gets the whole node
  // bandwidth, 32 ranks share it.
  const double solo = one.rank_flops(1.0, 8.0);
  const double crowded = full.rank_flops(1.0, 8.0);
  EXPECT_GT(solo, crowded);
  EXPECT_NEAR(crowded, m.mem_bw_per_node / 32 / 8.0, 1e-3);
}

TEST(Allocation, RankFlopsClampsEfficiency) {
  Allocation a{MachineModel::cori_haswell(), 1, 1};
  EXPECT_GT(a.rank_flops(-1.0, 0.0), 0.0);  // clamped to 0.01, not negative
  EXPECT_LE(a.rank_flops(5.0, 0.0), a.machine.flops_per_core);
}

TEST(Allocation, MessageTimeIsAffine) {
  Allocation a{MachineModel::cori_haswell(), 2, 32};
  const double t0 = a.message_time(0.0);
  const double t1 = a.message_time(1e6);
  EXPECT_DOUBLE_EQ(t0, a.machine.net_latency);
  EXPECT_GT(t1, t0);
  EXPECT_NEAR(t1 - t0, 1e6 * a.machine.net_inv_bandwidth, 1e-12);
}

TEST(Allocation, CollectivesScaleLogarithmically) {
  Allocation a{MachineModel::cori_haswell(), 4, 32};
  EXPECT_DOUBLE_EQ(a.broadcast_time(1024, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.allreduce_time(1024, 1), 0.0);
  const double b2 = a.broadcast_time(1024, 2);
  const double b128 = a.broadcast_time(1024, 128);
  EXPECT_NEAR(b128 / b2, 7.0, 1e-9);  // log2(128) = 7 hops
  EXPECT_GT(a.allreduce_time(1024, 8), a.broadcast_time(1024, 8));
}

TEST(Allocation, MemPerRankDividesNodeMemory) {
  Allocation a{MachineModel::cori_haswell(), 4, 32};
  EXPECT_DOUBLE_EQ(a.mem_per_rank(), 128e9 / 32);
  Allocation solo{MachineModel::cori_haswell(), 4, 1};
  EXPECT_DOUBLE_EQ(solo.mem_per_rank(), 128e9);
}

TEST(Allocation, NoiseIsDeterministicPerConfigTag) {
  Allocation a{MachineModel::cori_haswell(), 4, 32};
  EXPECT_DOUBLE_EQ(a.noise(1, 42), a.noise(1, 42));
  EXPECT_NE(a.noise(1, 42), a.noise(1, 43));
  EXPECT_NE(a.noise(1, 42), a.noise(2, 42));
}

TEST(Allocation, NoiseIsCenteredAndPositive) {
  Allocation a{MachineModel::cori_haswell(), 4, 32};
  double sum = 0.0;
  for (std::uint64_t t = 0; t < 2000; ++t) {
    const double f = a.noise(7, t);
    ASSERT_GT(f, 0.0);
    sum += std::log(f);
  }
  EXPECT_NEAR(sum / 2000.0, 0.0, 0.01);  // lognormal, median 1
}

TEST(Allocation, DifferentMachinesDifferentNoiseStreams) {
  Allocation hsw{MachineModel::cori_haswell(), 4, 32};
  Allocation knl{MachineModel::cori_knl(), 4, 68};
  EXPECT_NE(hsw.noise(1, 42), knl.noise(1, 42));
}

}  // namespace
}  // namespace gptc::hpcsim
