// Storage-engine tests (src/db/engine/): WAL framing and torn-tail replay,
// atomic snapshots, SipHash-2-4 reference vectors, ordered secondary
// indexes (results byte-identical to a scan), durable open / checkpoint /
// legacy-export migration, many-readers/one-writer concurrency, and the
// crash-recovery property — for every injected fault point (each WAL
// append, torn final record, before/after each snapshot rename), reopening
// the store yields query results bitwise-identical to an uninterrupted
// run's committed prefix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "db/document_store.hpp"
#include "db/engine/checksum.hpp"
#include "db/engine/engine.hpp"
#include "db/engine/fault.hpp"
#include "db/engine/index.hpp"
#include "db/engine/siphash.hpp"
#include "db/engine/snapshot.hpp"
#include "db/engine/wal.hpp"

namespace gptc::db {
namespace {

namespace fs = std::filesystem;
using engine::CrashInjected;
using engine::EngineOptions;
using engine::FaultInjector;
using engine::FaultPoint;
using json::Json;

Json doc(const std::string& text) { return Json::parse(text); }

/// Fresh scratch directory per test case.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

/// Shard count the suite runs the durable tests at: GPTC_SHARDS=N re-runs
/// the whole crash matrix against the sharded layout (the CI engine job
/// sets 4); unset keeps the single-shard default so both layouts stay
/// covered.
std::size_t env_shards() {
  const char* v = std::getenv("GPTC_SHARDS");
  if (v == nullptr || *v == '\0') return 0;
  return static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
}

std::size_t effective_shards() {
  const std::size_t s = env_shards();
  return s == 0 ? 1 : s;
}

/// Every WAL stem a store uses for `coll`: one per shard plus the engine
/// commit WAL (querying an absent WAL is harmless — seq/bytes are 0).
std::vector<std::string> wal_stems(DocumentStore& store,
                                   const std::string& coll) {
  auto* eng = store.storage_engine();
  std::vector<std::string> stems;
  for (std::size_t k = 0; k < eng->shard_count(); ++k)
    stems.push_back(
        engine::StorageEngine::shard_stem(coll, k, eng->shard_count()));
  stems.push_back(eng->commit_wal_stem());
  return stems;
}

/// Waits until every WAL's last logged sequence is durable — the upload
/// ack, fanned across shard WALs and the commit WAL.
void ack_everything(DocumentStore& store, const std::string& coll) {
  auto* eng = store.storage_engine();
  for (const auto& stem : wal_stems(store, coll))
    eng->wait_durable(stem, eng->last_logged_seq(stem));
}

/// Captures each WAL's last-fsync offset — the bytes that survive a power
/// loss at this instant.
std::map<std::string, std::uint64_t> synced_offsets(DocumentStore& store,
                                                    const std::string& coll) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& stem : wal_stems(store, coll))
    out[stem] = store.storage_engine()->wal_synced_bytes(stem);
  return out;
}

/// Models the power loss: truncates every WAL in the directory back to its
/// captured fsync offset (to zero when it was never fsynced at all).
void power_loss(const fs::path& dir,
                const std::map<std::string, std::uint64_t>& synced) {
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() != ".wal") continue;
    const auto it = synced.find(e.path().stem().string());
    fs::resize_file(e.path(), it == synced.end() ? 0 : it->second);
  }
}

/// Whether any snapshot for `coll` exists, regardless of shard layout
/// ("<coll>.snapshot" or "<coll>.s<k>of<n>.snapshot").
bool any_snapshot(const fs::path& dir, const std::string& coll) {
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (e.path().extension() == ".snapshot" &&
        name.rfind(coll + ".", 0) == 0)
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Checksums and SipHash

TEST(Checksum, Crc32KnownValues) {
  EXPECT_EQ(engine::crc32(""), 0u);
  EXPECT_EQ(engine::crc32("123456789"), 0xCBF43926u);  // the classic check
  EXPECT_EQ(engine::hex32(0xCBF43926u), "cbf43926");
  EXPECT_EQ(engine::parse_hex32("cbf43926"), 0xCBF43926u);
  EXPECT_FALSE(engine::parse_hex32("cbf4392").has_value());   // short
  EXPECT_FALSE(engine::parse_hex32("cbf4392z").has_value());  // non-hex
}

TEST(Checksum, Hex64RoundTrip) {
  EXPECT_EQ(engine::hex64(0x0123456789abcdefULL), "0123456789abcdef");
  EXPECT_EQ(engine::parse_hex64("0123456789abcdef"), 0x0123456789abcdefULL);
  EXPECT_FALSE(engine::parse_hex64("0123").has_value());
}

TEST(SipHash, ReferenceVectors) {
  // Appendix A of the SipHash paper: key bytes 00..0f, inputs of the first
  // n bytes 00,01,02,...
  const engine::SipHashKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  std::string input;
  EXPECT_EQ(engine::siphash24(key, input), 0x726fdb47dd0e0e31ULL);
  for (int i = 0; i < 8; ++i) input.push_back(static_cast<char>(i));
  EXPECT_EQ(engine::siphash24(key, input), 0x93f5f5799a932462ULL);
  for (int i = 8; i < 15; ++i) input.push_back(static_cast<char>(i));
  EXPECT_EQ(engine::siphash24(key, input), 0xa129ca6149be45e5ULL);
}

TEST(SipHash, SaltDerivedKeysDiffer) {
  const auto a = engine::siphash_key_from_salt("salt-a");
  const auto b = engine::siphash_key_from_salt("salt-b");
  EXPECT_TRUE(a.k0 != b.k0 || a.k1 != b.k1);
  const auto a2 = engine::siphash_key_from_salt("salt-a");
  EXPECT_EQ(a.k0, a2.k0);
  EXPECT_EQ(a.k1, a2.k1);
}

// ---------------------------------------------------------------------------
// WAL framing

TEST(Wal, AppendReplayRoundTrip) {
  TempDir dir("gptc_engine_wal");
  const fs::path path = dir.path() / "t.wal";
  const engine::WalFormat fmt;
  {
    engine::WalWriter w(path, fmt, /*group_commit=*/2, /*next_seq=*/1,
                        /*existing_bytes=*/0, nullptr);
    EXPECT_EQ(w.append(doc(R"({"o":"i","d":{"_id":1}})")), 1u);
    EXPECT_EQ(w.append(doc(R"({"o":"r","q":{}})")), 2u);
    EXPECT_EQ(w.append(doc(R"({"o":"i","d":{"_id":2}})")), 3u);
    w.sync();
  }
  const auto replay = engine::replay_wal(path, fmt);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].seq, 1u);
  EXPECT_EQ(replay.records[2].seq, 3u);
  EXPECT_EQ(replay.records[2].payload.at("d").at("_id").as_int(), 2);
}

TEST(Wal, TornFinalRecordIsTolerated) {
  TempDir dir("gptc_engine_wal_torn");
  const fs::path path = dir.path() / "t.wal";
  const engine::WalFormat fmt;
  std::uint64_t full_size = 0;
  {
    engine::WalWriter w(path, fmt, 1, 1, 0, nullptr);
    w.append(doc(R"({"o":"i","d":{"_id":1}})"));
    w.append(doc(R"({"o":"i","d":{"_id":2}})"));
    full_size = w.bytes();
  }
  // Tear the last record in half.
  fs::resize_file(path, full_size - 17);
  const auto replay = engine::replay_wal(path, fmt);
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload.at("d").at("_id").as_int(), 1);
  // A writer reopened at the valid prefix truncates the tail and appends
  // cleanly on a frame boundary.
  {
    engine::WalWriter w(path, fmt, 1, replay.records.back().seq + 1,
                        replay.valid_bytes, nullptr);
    w.append(doc(R"({"o":"i","d":{"_id":3}})"));
  }
  const auto again = engine::replay_wal(path, fmt);
  EXPECT_FALSE(again.torn_tail);
  ASSERT_EQ(again.records.size(), 2u);
  EXPECT_EQ(again.records[1].payload.at("d").at("_id").as_int(), 3);
}

TEST(Wal, CorruptedFinalRecordIsATornTail) {
  TempDir dir("gptc_engine_wal_crc");
  const fs::path path = dir.path() / "t.wal";
  const engine::WalFormat fmt;
  {
    engine::WalWriter w(path, fmt, 1, 1, 0, nullptr);
    w.append(doc(R"({"o":"i","d":{"_id":1}})"));
    w.append(doc(R"({"o":"i","d":{"_id":2}})"));
  }
  // Flip one payload byte of the second (final) frame: with an earlier
  // frame validating, a bad last line is classified as crash-torn.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  text[text.size() - 3] = text[text.size() - 3] == 'x' ? 'y' : 'x';
  std::ofstream(path, std::ios::binary) << text;
  const auto replay = engine::replay_wal(path, fmt);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_FALSE(replay.error.has_value());
  EXPECT_EQ(replay.records.size(), 1u);
}

TEST(Wal, MidLogCorruptionIsRejectedNotTruncated) {
  TempDir dir("gptc_engine_wal_midlog");
  const fs::path path = dir.path() / "t.wal";
  const engine::WalFormat fmt;
  std::uint64_t first_two = 0;
  {
    engine::WalWriter w(path, fmt, 1, 1, 0, nullptr);
    w.append(doc(R"({"o":"i","d":{"_id":1}})"));
    w.append(doc(R"({"o":"i","d":{"_id":2}})"));
    first_two = w.bytes();
    w.append(doc(R"({"o":"i","d":{"_id":3}})"));
  }
  // Corrupt the SECOND frame: committed frames follow it, so this is not a
  // torn tail — replay must report an error, never classify-and-truncate.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t target = first_two - 3;
  text[target] = text[target] == 'x' ? 'y' : 'x';
  std::ofstream(path, std::ios::binary) << text;
  const auto replay = engine::replay_wal(path, fmt);
  ASSERT_TRUE(replay.error.has_value());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.records.size(), 1u);  // valid prefix only
}

TEST(Wal, KeyedChecksumRejectsWrongKey) {
  TempDir dir("gptc_engine_wal_keyed");
  const fs::path path = dir.path() / "t.wal";
  engine::WalFormat keyed;
  keyed.checksum_key = engine::SipHashKey{1, 2};
  {
    engine::WalWriter w(path, keyed, 1, 1, 0, nullptr);
    w.append(doc(R"({"o":"i","d":{"_id":1}})"));
  }
  EXPECT_EQ(engine::replay_wal(path, keyed).records.size(), 1u);
  EXPECT_FALSE(engine::replay_wal(path, keyed).error.has_value());
  // The wrong key fails every complete frame — that is a rejected log, not
  // a torn tail, so nothing may be truncated away.
  engine::WalFormat wrong;
  wrong.checksum_key = engine::SipHashKey{1, 3};
  const auto refused = engine::replay_wal(path, wrong);
  EXPECT_EQ(refused.records.size(), 0u);
  EXPECT_TRUE(refused.error.has_value());
  // An unkeyed reader sees a 16-digit checksum where it expects 8: refused.
  EXPECT_TRUE(engine::replay_wal(path, engine::WalFormat{}).error.has_value());
}

// ---------------------------------------------------------------------------
// Snapshots

TEST(Snapshot, RoundTripAndCorruptionDetection) {
  TempDir dir("gptc_engine_snap");
  const fs::path path = dir.path() / "c.snapshot";
  Collection c("c");
  c.insert(doc(R"({"k":1})"));
  engine::write_snapshot(path, c.to_json(), /*last_seq=*/7, nullptr);
  const auto snap = engine::read_snapshot(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->last_seq, 7u);
  EXPECT_EQ(snap->collection_state.at("docs").size(), 1u);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));

  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  text[12] = text[12] == 'a' ? 'b' : 'a';
  std::ofstream(path, std::ios::binary) << text;
  // An existing-but-corrupt snapshot is a hard error: silently falling back
  // to an older source would resurrect stale state.
  EXPECT_THROW(engine::read_snapshot(path), std::runtime_error);
  EXPECT_FALSE(engine::read_snapshot(path.string() + ".gone").has_value());
}

// ---------------------------------------------------------------------------
// lookup_path array segments (satellite)

TEST(LookupPathArrays, NumericSegmentsIndexArrays) {
  const Json d = doc(
      R"({"tuning_parameters":{"grid":[4,8,{"z":5}]},"list":[[1,2],[3]]})");
  ASSERT_NE(lookup_path(d, "tuning_parameters.grid.0"), nullptr);
  EXPECT_EQ(lookup_path(d, "tuning_parameters.grid.0")->as_int(), 4);
  EXPECT_EQ(lookup_path(d, "tuning_parameters.grid.2.z")->as_int(), 5);
  EXPECT_EQ(lookup_path(d, "list.1.0")->as_int(), 3);
  EXPECT_EQ(lookup_path(d, "tuning_parameters.grid.3"), nullptr);  // OOB
  EXPECT_EQ(lookup_path(d, "tuning_parameters.grid.x"), nullptr);
  EXPECT_EQ(lookup_path(d, "tuning_parameters.grid.-1"), nullptr);
}

TEST(LookupPathArrays, QueriesReachIntoArrays) {
  Collection c("t");
  c.insert(doc(R"({"tuning_parameters":{"grid":[4,8]}})"));
  c.insert(doc(R"({"tuning_parameters":{"grid":[16,8]}})"));
  EXPECT_EQ(c.count(doc(R"({"tuning_parameters.grid.0":{"$gte":8}})")), 1u);
  EXPECT_EQ(c.count(doc(R"({"tuning_parameters.grid.1":8})")), 2u);
}

// ---------------------------------------------------------------------------
// Secondary indexes: byte-identical to a scan

/// Two collections with identical contents; `indexed` carries indexes.
struct IndexedPair {
  Collection scan{"c"};
  Collection indexed{"c"};

  IndexedPair() {
    indexed.create_index("k");
    indexed.create_index("s");
    indexed.create_index("nested.x");
    const char* docs[] = {
        R"({"k":1,"s":"a","nested":{"x":10}})",
        R"({"k":2.0,"s":"b","nested":{"x":20}})",
        R"({"k":2,"s":"bb"})",
        R"({"k":-3,"s":"c","nested":{"x":5.5}})",
        R"({"k":null,"s":"d"})",
        R"({"k":true,"s":"e","nested":{"x":"str"}})",
        R"({"k":[1,2],"s":"f"})",
        R"({"s":"g","nested":{"x":20}})",
        R"({"k":100,"s":"h","nested":{}})",
    };
    for (const char* d : docs) {
      scan.insert(doc(d));
      indexed.insert(doc(d));
    }
  }

  void expect_same(const std::string& query) {
    const Json q = doc(query);
    const auto a = scan.find(q);
    const auto b = indexed.find(q);
    ASSERT_EQ(a.size(), b.size()) << query;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i].dump(), b[i].dump()) << query;
    EXPECT_EQ(scan.count(q), indexed.count(q)) << query;
    EXPECT_EQ(scan.find_one(q).dump(), indexed.find_one(q).dump()) << query;
  }
};

TEST(SecondaryIndex, ResultsIdenticalToScan) {
  IndexedPair p;
  for (const char* q : {
           R"({"k":2})",
           R"({"k":2.0})",
           R"({"k":{"$eq":1}})",
           R"({"k":{"$gte":1,"$lt":3}})",
           R"({"k":{"$gt":-10}})",
           R"({"k":{"$lte":2}})",
           R"({"k":{"$in":[1,100,null]}})",
           R"({"k":{"$in":[2,2.0]}})",
           R"({"k":{"$in":[1,1,100,1]}})",
           R"({"k":{"$in":[]}})",
           R"({"k":{"$ne":2}})",
           R"({"k":{"$exists":false}})",
           R"({"k":{"$exists":true}})",
           R"({"k":null})",
           R"({"k":true})",
           R"({"s":{"$gte":"b","$lt":"c"}})",
           R"({"s":"bb"})",
           R"({"nested.x":20})",
           R"({"nested.x":{"$gt":5}})",
           R"({"nested.x":{"$gte":"str"}})",
           R"({"k":{"$gte":1},"s":{"$lt":"z"}})",
           R"({"$or":[{"k":1},{"s":"d"}],"k":{"$gte":0}})",
           R"({})",
       })
    p.expect_same(q);
}

TEST(SecondaryIndex, MaintainedAcrossUpdateAndRemove) {
  IndexedPair p;
  const Json upd = doc(R"({"k":42})");
  EXPECT_EQ(p.scan.update(doc(R"({"s":"b"})"), upd),
            p.indexed.update(doc(R"({"s":"b"})"), upd));
  p.expect_same(R"({"k":42})");
  p.expect_same(R"({"k":{"$gte":2}})");
  EXPECT_EQ(p.scan.remove(doc(R"({"k":{"$lt":2}})")),
            p.indexed.remove(doc(R"({"k":{"$lt":2}})")));
  p.expect_same(R"({"k":{"$gte":-100}})");
  p.expect_same(R"({})");
  // Inserts after maintenance keep the planner consistent too.
  p.scan.insert(doc(R"({"k":2,"s":"late"})"));
  p.indexed.insert(doc(R"({"k":2,"s":"late"})"));
  p.expect_same(R"({"k":2})");
}

TEST(SecondaryIndex, DeclarationIsIdempotentAndListed) {
  Collection c("t");
  c.insert(doc(R"({"k":1})"));
  c.create_index("k");
  c.create_index("k");
  EXPECT_TRUE(c.has_index("k"));
  EXPECT_FALSE(c.has_index("v"));
  EXPECT_EQ(c.index_paths(), std::vector<std::string>{"k"});
  EXPECT_EQ(c.count(doc(R"({"k":1})")), 1u);
}

// ---------------------------------------------------------------------------
// Durable store basics

EngineOptions test_options(FaultInjector* fault = nullptr,
                           std::size_t group_commit = 4) {
  EngineOptions opts;
  opts.group_commit = group_commit;
  opts.checkpoint_wal_bytes = 1u << 30;  // explicit checkpoints only
  opts.fault = fault;
  opts.shards = env_shards();  // 0 unless GPTC_SHARDS re-runs the suite
  return opts;
}

TEST(DurableStore, ReopenRecoversInsertsUpdatesRemoves) {
  TempDir dir("gptc_engine_store");
  {
    auto store = DocumentStore::open_durable(dir.path(), test_options());
    auto& c = store.collection("samples");
    c.insert(doc(R"({"k":1,"v":"a"})"));
    c.insert(doc(R"({"k":2,"v":"b"})"));
    c.update(doc(R"({"k":1})"), doc(R"({"v":"a2"})"));
    c.remove(doc(R"({"k":2})"));
    c.insert(doc(R"({"k":3,"v":"c"})"));
  }
  auto store = DocumentStore::open_durable(dir.path(), test_options());
  ASSERT_NE(store.find_collection("samples"), nullptr);
  const auto& c = *store.find_collection("samples");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.find_one(doc(R"({"k":1})")).at("v").as_string(), "a2");
  EXPECT_EQ(c.find_one(doc(R"({"k":3})")).at("_id").as_int(), 3);
  // Ids continue past the removed one.
  EXPECT_EQ(store.collection("samples").insert(doc(R"({"k":4})")), 4);
}

TEST(DurableStore, ThresholdCheckpointCompactsWal) {
  TempDir dir("gptc_engine_compact");
  EngineOptions opts = test_options();
  opts.checkpoint_wal_bytes = 512;  // tiny: force frequent checkpoints
  auto store = DocumentStore::open_durable(dir.path(), opts);
  auto& c = store.collection("samples");
  for (int i = 0; i < 64; ++i)
    c.insert(doc(R"({"payload":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"})"));
  EXPECT_TRUE(any_snapshot(dir.path(), "samples"));
  // Each shard's WAL was truncated at its last checkpoint, so the total is
  // far smaller than the volume appended.
  std::uint64_t total = 0;
  for (const auto& stem : wal_stems(store, "samples"))
    total += store.storage_engine()->wal_bytes(stem);
  EXPECT_LT(total, 1024u * store.storage_engine()->shard_count());
  auto reopened = DocumentStore::open_durable(dir.path(), opts);
  EXPECT_EQ(reopened.collection("samples").size(), 64u);
}

TEST(DurableStore, MigratesLegacyJsonExportOnce) {
  TempDir dir("gptc_engine_migrate");
  {
    DocumentStore legacy;
    legacy.collection("samples").insert(doc(R"({"k":1})"));
    legacy.collection("samples").insert(doc(R"({"k":2})"));
    legacy.export_json(dir.path());
  }
  {
    auto store = DocumentStore::open_durable(dir.path(), test_options());
    EXPECT_EQ(store.collection("samples").size(), 2u);
    store.collection("samples").insert(doc(R"({"k":3})"));
    // Migration snapshots immediately and retires the export, so the stale
    // file can never be mistaken for the base state again.
    EXPECT_TRUE(any_snapshot(dir.path(), "samples"));
    EXPECT_FALSE(fs::exists(dir.path() / "samples.json"));
    EXPECT_TRUE(fs::exists(dir.path() / "samples.json.migrated"));
  }
  auto store = DocumentStore::open_durable(dir.path(), test_options());
  EXPECT_EQ(store.collection("samples").size(), 3u);
}

TEST(DurableStore, CorruptSnapshotRefusesToOpen) {
  TempDir dir("gptc_engine_snapcorrupt");
  {
    auto store = DocumentStore::open_durable(dir.path(), test_options());
    store.collection("samples").insert(doc(R"({"k":1})"));
    store.checkpoint_all();
  }
  // Corrupt whichever shard snapshot holds the document.
  fs::path snap;
  for (const auto& e : fs::directory_iterator(dir.path()))
    if (e.path().extension() == ".snapshot" && fs::file_size(e.path()) > 0)
      snap = e.path();
  ASSERT_FALSE(snap.empty());
  std::ifstream in(snap, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  text[text.size() / 2] = text[text.size() / 2] == 'a' ? 'b' : 'a';
  std::ofstream(snap, std::ios::binary) << text;
  EXPECT_THROW(DocumentStore::open_durable(dir.path(), test_options()),
               std::runtime_error);
}

TEST(DurableStore, MidLogWalCorruptionRefusesToOpen) {
  TempDir dir("gptc_engine_walcorrupt");
  {
    auto store = DocumentStore::open_durable(
        dir.path(), test_options(nullptr, /*group_commit=*/1));
    // Enough documents that every shard's WAL holds at least two frames.
    for (std::size_t i = 1; i <= 2 * effective_shards(); ++i) {
      Json d = Json::object();
      d["k"] = static_cast<std::int64_t>(i);
      store.collection("samples").insert(std::move(d));
    }
  }
  // Corrupt the first frame of one shard WAL: committed frames follow, so
  // recovery must refuse the directory rather than truncate them away.
  const fs::path wal =
      dir.path() / (engine::StorageEngine::shard_stem("samples", 0,
                                                      effective_shards()) +
                    ".wal");
  std::ifstream in(wal, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t target = text.find('\n') - 3;
  text[target] = text[target] == 'x' ? 'y' : 'x';
  std::ofstream(wal, std::ios::binary) << text;
  EXPECT_THROW(DocumentStore::open_durable(dir.path(), test_options()),
               std::runtime_error);
}

TEST(DurableStore, TornTailIsReportedAsRecoveryWarning) {
  TempDir dir("gptc_engine_tornwarn");
  {
    FaultInjector fault;
    fault.arm(FaultPoint::WalShortWrite, 3);
    auto store = DocumentStore::open_durable(
        dir.path(), test_options(&fault, /*group_commit=*/1));
    try {
      for (int k = 1; k <= 3; ++k) {
        Json d = Json::object();
        d["k"] = k;
        store.collection("samples").insert(std::move(d));
      }
      FAIL() << "fault did not fire";
    } catch (const CrashInjected&) {
    }
  }
  auto store = DocumentStore::open_durable(dir.path(), test_options());
  EXPECT_EQ(store.collection("samples").size(), 2u);
  ASSERT_EQ(store.storage_engine()->recovery_warnings().size(), 1u);
  EXPECT_NE(store.storage_engine()->recovery_warnings()[0].find("samples"),
            std::string::npos);
}

TEST(DurableStore, ExportJsonStaysAvailableForInspection) {
  TempDir dir("gptc_engine_export");
  TempDir exp("gptc_engine_export_out");
  auto store = DocumentStore::open_durable(dir.path(), test_options());
  store.collection("samples").insert(doc(R"({"k":1})"));
  store.export_json(exp.path());
  const DocumentStore loaded = DocumentStore::load(exp.path());
  ASSERT_NE(loaded.find_collection("samples"), nullptr);
  EXPECT_EQ(loaded.find_collection("samples")->size(), 1u);
}

TEST(DurableStore, KeyedWalChecksumRoundTrips) {
  TempDir dir("gptc_engine_keyed");
  EngineOptions opts = test_options();
  opts.wal_checksum_key = engine::SipHashKey{0xdeadbeefULL, 0xfeedfaceULL};
  {
    auto store = DocumentStore::open_durable(dir.path(), opts);
    store.collection("samples").insert(doc(R"({"k":1})"));
  }
  auto store = DocumentStore::open_durable(dir.path(), opts);
  EXPECT_EQ(store.collection("samples").size(), 1u);
  // The wrong key refuses the log outright: opening throws rather than
  // truncating the (valid, just differently-keyed) records away.
  EngineOptions wrong = test_options();
  wrong.wal_checksum_key = engine::SipHashKey{1, 1};
  TempDir dir2("gptc_engine_keyed2");
  fs::copy(dir.path(), dir2.path(), fs::copy_options::overwrite_existing |
                                        fs::copy_options::recursive);
  EXPECT_THROW(DocumentStore::open_durable(dir2.path(), wrong),
               std::runtime_error);
  // The refused log is untouched on disk: the right key still opens it.
  auto again = DocumentStore::open_durable(dir2.path(), opts);
  EXPECT_EQ(again.collection("samples").size(), 1u);
}

// ---------------------------------------------------------------------------
// Crash recovery: every fault point yields the committed prefix

constexpr std::size_t kWorkloadOps = 24;
constexpr std::size_t kCheckpointEvery = 5;

/// One deterministic mixed op (1-based i) against the "samples" collection.
void apply_op(DocumentStore& store, std::size_t i) {
  auto& c = store.collection("samples");
  if (i % 7 == 3) {
    Json q = Json::object();
    q["k"] = static_cast<std::int64_t>(i % 5);
    Json u = Json::object();
    u["v"] = static_cast<std::int64_t>(1000 + i);
    c.update(q, u);
  } else if (i % 11 == 6) {
    Json q = Json::object();
    Json cond = Json::object();
    cond["$lte"] = static_cast<std::int64_t>(i % 3);
    q["k"] = cond;
    c.remove(q);
  } else {
    Json d = Json::object();
    d["k"] = static_cast<std::int64_t>(i % 5);
    d["v"] = static_cast<std::int64_t>(i);
    d["s"] = "s" + std::to_string(i % 4);
    c.insert(d);
  }
}

/// The uninterrupted reference: the same op prefix on an in-memory store.
std::string expected_state_after(std::size_t committed_ops) {
  DocumentStore store;
  store.collection("samples").create_index("k");  // exercise planner parity
  for (std::size_t i = 1; i <= committed_ops; ++i) apply_op(store, i);
  return store.collection("samples").to_json().dump();
}

std::string reopened_state(const fs::path& dir) {
  auto store = DocumentStore::open_durable(dir, test_options());
  return store.collection("samples").to_json().dump();
}

/// Runs the workload with `fault` armed; returns ops fully applied before
/// the injected crash (workload ops, not WAL appends).
std::size_t run_until_crash(const fs::path& dir, FaultInjector& fault,
                            bool with_checkpoints) {
  auto store = DocumentStore::open_durable(dir, test_options(&fault));
  std::size_t applied = 0;
  try {
    for (std::size_t i = 1; i <= kWorkloadOps; ++i) {
      apply_op(store, i);
      ++applied;
      if (with_checkpoints && i % kCheckpointEvery == 0)
        store.checkpoint_all();
    }
  } catch (const CrashInjected&) {
  }
  return applied;
}

class CrashAtEveryWalAppend : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CrashAtEveryWalAppend, RecoversCommittedPrefix) {
  const std::uint64_t nth = GetParam();
  for (const FaultPoint point :
       {FaultPoint::WalAppend, FaultPoint::WalShortWrite}) {
    TempDir dir("gptc_engine_crash_append");
    FaultInjector fault;
    fault.arm(point, nth);
    const std::size_t applied =
        run_until_crash(dir.path(), fault, /*with_checkpoints=*/false);
    // Fault n fires during op n: n-1 ops committed.
    ASSERT_EQ(applied, static_cast<std::size_t>(nth - 1));
    EXPECT_EQ(reopened_state(dir.path()), expected_state_after(applied));
  }
}

INSTANTIATE_TEST_SUITE_P(EveryAppend, CrashAtEveryWalAppend,
                         ::testing::Range<std::uint64_t>(1, kWorkloadOps + 1));

class CrashAtEverySnapshot : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CrashAtEverySnapshot, RecoversCommittedPrefix) {
  const std::uint64_t nth = GetParam();
  for (const FaultPoint point : {FaultPoint::SnapshotBeforeRename,
                                 FaultPoint::SnapshotAfterRename}) {
    TempDir dir("gptc_engine_crash_snap");
    FaultInjector fault;
    fault.arm(point, nth);
    const std::size_t applied =
        run_until_crash(dir.path(), fault, /*with_checkpoints=*/true);
    // A checkpoint writes one snapshot per shard, and checkpoints happen
    // between ops: everything applied before the crashing one committed.
    const std::size_t checkpoint =
        (static_cast<std::size_t>(nth) + effective_shards() - 1) /
        effective_shards();
    ASSERT_EQ(applied, checkpoint * kCheckpointEvery);
    EXPECT_EQ(reopened_state(dir.path()), expected_state_after(applied));
  }
}

INSTANTIATE_TEST_SUITE_P(
    EverySnapshot, CrashAtEverySnapshot,
    ::testing::Range<std::uint64_t>(
        1, kWorkloadOps / kCheckpointEvery * effective_shards() + 1));

TEST(CrashRecovery, UninterruptedRunMatchesReference) {
  TempDir dir("gptc_engine_crash_none");
  FaultInjector fault;  // passive: counts but never fires
  const std::size_t applied =
      run_until_crash(dir.path(), fault, /*with_checkpoints=*/true);
  EXPECT_EQ(applied, kWorkloadOps);
  // Every op is exactly one WAL append — a shard frame, or (when the op
  // spans shards) the single logical commit record.
  EXPECT_EQ(fault.count(FaultPoint::WalAppend), kWorkloadOps);
  EXPECT_EQ(fault.count(FaultPoint::SnapshotBeforeRename),
            kWorkloadOps / kCheckpointEvery * effective_shards());
  EXPECT_EQ(reopened_state(dir.path()), expected_state_after(kWorkloadOps));
}

TEST(CrashRecovery, RepeatedCrashesStackSafely) {
  // Crash, reopen, write more, crash again — recovery must compose.
  TempDir dir("gptc_engine_crash_stack");
  {
    FaultInjector fault;
    fault.arm(FaultPoint::WalShortWrite, 4);
    auto store = DocumentStore::open_durable(dir.path(), test_options(&fault));
    try {
      for (std::size_t i = 1; i <= 10; ++i) apply_op(store, i);
      FAIL() << "fault did not fire";
    } catch (const CrashInjected&) {
    }
  }
  {
    FaultInjector fault;
    fault.arm(FaultPoint::SnapshotAfterRename, 1);
    auto store = DocumentStore::open_durable(dir.path(), test_options(&fault));
    try {
      for (std::size_t i = 4; i <= 10; ++i) apply_op(store, i);
      store.checkpoint_all();
      FAIL() << "fault did not fire";
    } catch (const CrashInjected&) {
    }
  }
  EXPECT_EQ(reopened_state(dir.path()), expected_state_after(10));
}

// ---------------------------------------------------------------------------
// Concurrency: many readers, one writer

TEST(Concurrency, ManyReadersOneWriterOnDurableCollection) {
  TempDir dir("gptc_engine_threads");
  auto store =
      DocumentStore::open_durable(dir.path(), test_options(nullptr, 8));
  auto& c = store.collection("samples");
  c.create_index("k");

  constexpr int kDocs = 200;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&c, &done, &reads] {
      const Json q = doc(R"({"k":{"$gte":2}})");
      while (!done.load(std::memory_order_acquire)) {
        const auto hits = c.find(q);
        for (const auto& h : hits) ASSERT_GE(h.at("k").as_int(), 2);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Group-commit flushes and WAL-size polls race the writer through the
  // WalWriter's internal mutex — a store-level sync must never tear an
  // in-flight append (TSan-checked in the sanitizer CI job).
  readers.emplace_back([&store, &done] {
    while (!done.load(std::memory_order_acquire)) {
      store.sync();
      (void)store.storage_engine()->wal_bytes("samples");
    }
  });
  for (int i = 0; i < kDocs; ++i) {
    Json d = Json::object();
    d["k"] = i % 5;
    d["v"] = i;
    c.insert(std::move(d));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(c.size(), static_cast<std::size_t>(kDocs));
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(c.count(doc(R"({"k":{"$gte":2}})")),
            static_cast<std::size_t>(kDocs / 5 * 3));
}

// ---------------------------------------------------------------------------
// Async group commit: the ack contract under crashes
//
// Process-crash faults (exceptions) leave the page cache intact, so to
// model a POWER LOSS at the crash point these tests capture the shard's
// wal_synced_bytes() — the offset of the last completed fsync — and
// truncate the WAL file to it after closing the store. Whatever the
// commit thread had not fsynced is gone, exactly as on a real machine
// losing power; whatever was acked (wait_durable returned) must survive.

EngineOptions async_options(FaultInjector* fault = nullptr) {
  EngineOptions opts = test_options(fault);
  opts.async_commit = true;
  return opts;
}

TEST(GroupCommit, AckedRecordsSurvivePowerLossUnackedTailMayNot) {
  TempDir dir("gptc_gc_ack");
  std::map<std::string, std::uint64_t> synced;
  {
    auto store = DocumentStore::open_durable(dir.path(), async_options());
    auto& c = store.collection("samples");
    for (int i = 0; i < 5; ++i) {
      Json d = Json::object();
      d["k"] = static_cast<std::int64_t>(i);
      c.insert(std::move(d));
    }
    ack_everything(store, "samples");  // the ack
    synced = synced_offsets(store, "samples");
    std::uint64_t total = 0;
    for (const auto& [stem, bytes] : synced) total += bytes;
    ASSERT_GT(total, 0u);
    // One more record, never acked: power loss may take it.
    Json d = Json::object();
    d["k"] = static_cast<std::int64_t>(99);
    c.insert(std::move(d));
  }
  power_loss(dir.path(), synced);
  auto store = DocumentStore::open_durable(dir.path(), async_options());
  const auto& c = *store.find_collection("samples");
  EXPECT_EQ(c.size(), 5u);
  EXPECT_TRUE(c.find_one(doc(R"({"k":99})")).is_null());
}

TEST(GroupCommit, CrashBetweenEnqueueAndFsyncNeverAcks) {
  TempDir dir("gptc_gc_noack");
  FaultInjector fault;
  fault.arm(FaultPoint::CommitFsync, 1);
  std::map<std::string, std::uint64_t> synced;
  {
    auto store = DocumentStore::open_durable(dir.path(), async_options(&fault));
    auto& c = store.collection("samples");
    auto batch = c.insert_batch(
        {doc(R"({"k":1})"), doc(R"({"k":2})"), doc(R"({"k":3})")});
    ASSERT_GT(batch.ticket.seq, 0u);
    // The batch is enqueued (logged) but the commit thread crashes before
    // its fsync: the ack path must throw, and keep throwing.
    EXPECT_THROW(store.storage_engine()->wait_durable(batch.ticket),
                 CrashInjected);
    EXPECT_THROW(store.storage_engine()->wait_durable(batch.ticket),
                 CrashInjected);
    EXPECT_THROW(store.sync(), CrashInjected);
    synced = synced_offsets(store, "samples");
  }
  // Power loss: nothing past the last fsync survives — which is nothing,
  // since the committer crashed before its first fsync.
  power_loss(dir.path(), synced);
  auto store = DocumentStore::open_durable(dir.path(), async_options());
  EXPECT_EQ(store.collection("samples").size(), 0u);
}

class CrashAtEveryGroupCommitFsync
    : public ::testing::TestWithParam<std::uint64_t> {};

// Single-record writer that acks each record before the next: the fault
// at the Nth batch fsync crashes the committer while record N is in
// flight, so exactly the acked prefix — records 1..N-1 — survives a
// power loss at that instant.
TEST_P(CrashAtEveryGroupCommitFsync, RecoveryYieldsExactlyTheAckedPrefix) {
  const std::uint64_t nth = GetParam();
  TempDir dir("gptc_gc_prefix");
  FaultInjector fault;
  fault.arm(FaultPoint::CommitFsync, nth);
  std::map<std::string, std::uint64_t> synced;
  std::size_t acked = 0;
  {
    auto store = DocumentStore::open_durable(dir.path(), async_options(&fault));
    auto& c = store.collection("samples");
    try {
      for (int i = 0; i < 16; ++i) {
        Json d = Json::object();
        d["k"] = static_cast<std::int64_t>(i);
        c.insert(std::move(d));
        ack_everything(store, "samples");
        ++acked;  // reached only when the record's fsync completed
      }
      FAIL() << "CommitFsync fault " << nth << " never fired";
    } catch (const CrashInjected&) {
    }
    EXPECT_EQ(acked, nth - 1);
    synced = synced_offsets(store, "samples");
  }
  power_loss(dir.path(), synced);
  auto store = DocumentStore::open_durable(dir.path(), async_options());
  const auto& c = *store.find_collection("samples");
  ASSERT_EQ(c.size(), acked);
  for (std::size_t i = 0; i < acked; ++i) {
    Json q = Json::object();
    q["k"] = static_cast<std::int64_t>(i);
    EXPECT_FALSE(c.find_one(q).is_null()) << "acked record k=" << i;
  }
}

// Batched writer: each insert_batch is one WAL record (a shard frame, or
// the logical commit record when the batch spans shards) and one commit-
// thread fsync, so a crash at the Nth fsync acks exactly N-1 batches —
// and because a batch is a single frame, recovery can never yield a
// partial batch even when the power loss lands mid-stream.
TEST_P(CrashAtEveryGroupCommitFsync, BatchesRecoverWholeOrNotAtAll) {
  const std::uint64_t nth = GetParam();
  constexpr std::size_t kBatchSize = 3;
  TempDir dir("gptc_gc_batch");
  FaultInjector fault;
  fault.arm(FaultPoint::CommitFsync, nth);
  std::map<std::string, std::uint64_t> synced;
  std::size_t acked_batches = 0;
  {
    auto store = DocumentStore::open_durable(dir.path(), async_options(&fault));
    auto& c = store.collection("samples");
    try {
      for (int b = 0; b < 16; ++b) {
        std::vector<Json> batch;
        for (std::size_t k = 0; k < kBatchSize; ++k) {
          Json d = Json::object();
          d["b"] = static_cast<std::int64_t>(b);
          d["k"] = static_cast<std::int64_t>(k);
          batch.push_back(std::move(d));
        }
        const auto receipt = c.insert_batch(std::move(batch));
        store.storage_engine()->wait_durable(receipt.ticket);
        ++acked_batches;
      }
      FAIL() << "CommitFsync fault " << nth << " never fired";
    } catch (const CrashInjected&) {
    }
    EXPECT_EQ(acked_batches, nth - 1);
    synced = synced_offsets(store, "samples");
  }
  power_loss(dir.path(), synced);
  auto store = DocumentStore::open_durable(dir.path(), async_options());
  const auto& c = *store.find_collection("samples");
  ASSERT_EQ(c.size(), acked_batches * kBatchSize);
  for (std::size_t b = 0; b < acked_batches; ++b) {
    Json q = Json::object();
    q["b"] = static_cast<std::int64_t>(b);
    EXPECT_EQ(c.count(q), kBatchSize) << "batch " << b << " not whole";
  }
}

INSTANTIATE_TEST_SUITE_P(EveryFsync, CrashAtEveryGroupCommitFsync,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(GroupCommit, CheckpointMakesLoggedRecordsDurableWithoutFsyncWait) {
  TempDir dir("gptc_gc_checkpoint");
  auto store = DocumentStore::open_durable(dir.path(), async_options());
  auto& c = store.collection("samples");
  for (int i = 0; i < 8; ++i) {
    Json d = Json::object();
    d["k"] = static_cast<std::int64_t>(i);
    c.insert(std::move(d));
  }
  std::map<std::string, std::uint64_t> logged;
  for (const auto& stem : wal_stems(store, "samples"))
    logged[stem] = store.storage_engine()->last_logged_seq(stem);
  // A checkpoint persists synced snapshots covering every logged record,
  // so the committer must treat them as durable immediately.
  store.checkpoint_all();
  for (const auto& [stem, seq] : logged)
    store.storage_engine()->wait_durable(stem, seq);  // must not block
  EXPECT_EQ(store.collection("samples").size(), 8u);
}

// ---------------------------------------------------------------------------
// Sharded layout: shard-count migration, cross-shard logical commits,
// parallel recovery. These pin their shard counts explicitly (overriding
// any GPTC_SHARDS) because they assert on the layout transitions
// themselves.

EngineOptions sharded_options(std::size_t shards,
                              FaultInjector* fault = nullptr) {
  EngineOptions opts = test_options(fault);
  opts.shards = shards;
  return opts;
}

/// find() results as one dumpable array, for byte-identity comparisons.
std::string dumped_find(const Collection& c, const Json& query) {
  Json arr = Json::array();
  for (auto& d : c.find(query)) arr.push_back(std::move(d));
  return arr.dump();
}

TEST(Sharding, MigrationPreservesByteIdenticalQueryResults) {
  TempDir dir("gptc_shard_migrate");
  const Json probe = doc(R"({"k":{"$gte":2}})");
  std::string state1, finds1;
  {
    auto store = DocumentStore::open_durable(dir.path(), sharded_options(1));
    auto& c = store.collection("samples");
    c.create_index("k");
    for (std::size_t i = 1; i <= kWorkloadOps; ++i) apply_op(store, i);
    state1 = c.to_json().dump();
    finds1 = dumped_find(c, probe);
  }
  std::string state4;
  {
    // 1 -> 4: recover at the old count, repartition, flip the manifest.
    auto store = DocumentStore::open_durable(dir.path(), sharded_options(4));
    EXPECT_EQ(store.storage_engine()->shard_count(), 4u);
    EXPECT_TRUE(fs::exists(dir.path() / "engine.manifest"));
    EXPECT_FALSE(fs::exists(dir.path() / "samples.wal"));  // layout retired
    auto& c = store.collection("samples");
    c.create_index("k");
    EXPECT_EQ(c.to_json().dump(), state1);
    EXPECT_EQ(dumped_find(c, probe), finds1);
    EXPECT_EQ(c.count(probe), c.find(probe).size());
    // New writes land in the sharded layout and migrate back with it.
    for (std::size_t i = kWorkloadOps + 1; i <= kWorkloadOps + 8; ++i)
      apply_op(store, i);
    state4 = c.to_json().dump();
  }
  {
    // 4 -> 1: back to the exact legacy layout, nothing lost.
    auto store = DocumentStore::open_durable(dir.path(), sharded_options(1));
    EXPECT_EQ(store.storage_engine()->shard_count(), 1u);
    EXPECT_TRUE(fs::exists(dir.path() / "samples.snapshot"));
    EXPECT_FALSE(fs::exists(dir.path() / "samples.s0of4.wal"));
    EXPECT_EQ(store.collection("samples").to_json().dump(), state4);
  }
  {
    // shards = 0 keeps whatever the directory holds.
    auto store = DocumentStore::open_durable(dir.path(), sharded_options(0));
    EXPECT_EQ(store.storage_engine()->shard_count(), 1u);
    EXPECT_EQ(store.collection("samples").to_json().dump(), state4);
  }
}

TEST(Sharding, CrashedMigrationLeavesTheOldLayoutIntact) {
  TempDir dir("gptc_shard_migcrash");
  std::string before;
  {
    auto store = DocumentStore::open_durable(dir.path(), sharded_options(1));
    for (std::size_t i = 1; i <= 10; ++i) apply_op(store, i);
    before = store.collection("samples").to_json().dump();
  }
  // Migration writes one full-coverage snapshot per new shard before the
  // manifest flip; crash at each and the flip never happens.
  for (std::uint64_t nth = 1; nth <= 4; ++nth) {
    for (const FaultPoint point : {FaultPoint::SnapshotBeforeRename,
                                   FaultPoint::SnapshotAfterRename}) {
      FaultInjector fault;
      fault.arm(point, nth);
      EXPECT_THROW(
          DocumentStore::open_durable(dir.path(), sharded_options(4, &fault)),
          CrashInjected);
      // The directory still opens at one shard with identical contents;
      // the half-written sharded files are swept as migration debris.
      auto store = DocumentStore::open_durable(dir.path(), sharded_options(0));
      EXPECT_EQ(store.storage_engine()->shard_count(), 1u);
      EXPECT_EQ(store.collection("samples").to_json().dump(), before);
    }
  }
}

TEST(CrossShardCommit, ReserveAndAppendCrashesLeaveNothingApplied) {
  // A DocumentStore::insert_atomic spanning two collections and three
  // shards: 3 CommitReserve windows (one per member) plus the
  // CommitAppend window right before the commit record hits the WAL.
  struct Case {
    FaultPoint point;
    std::uint64_t nth;
  };
  const Case cases[] = {{FaultPoint::CommitReserve, 1},
                        {FaultPoint::CommitReserve, 2},
                        {FaultPoint::CommitReserve, 3},
                        {FaultPoint::CommitAppend, 1}};
  for (const Case& tc : cases) {
    TempDir dir("gptc_cross_crash");
    FaultInjector fault;
    {
      auto store =
          DocumentStore::open_durable(dir.path(), sharded_options(4, &fault));
      // Committed baseline in both collections before the fault arms.
      store.collection("problems").insert(doc(R"({"name":"base"})"));
      store.collection("runs").insert(doc(R"({"k":0})"));
      fault.arm(tc.point, tc.nth);
      std::map<std::string, std::vector<Json>> docs;
      docs["problems"].push_back(doc(R"({"name":"p"})"));
      docs["runs"].push_back(doc(R"({"k":1})"));
      docs["runs"].push_back(doc(R"({"k":2})"));
      EXPECT_THROW(store.insert_atomic(docs), CrashInjected);
      // Nothing applied in memory — reserved slots are mere seq gaps.
      EXPECT_EQ(store.collection("problems").size(), 1u);
      EXPECT_EQ(store.collection("runs").size(), 1u);
      EXPECT_FALSE(store.collection("runs").exists(doc(R"({"k":1})")));
      EXPECT_FALSE(store.collection("problems").exists(doc(R"({"name":"p"})")));
      // The engine stays usable: the same commit retried goes through.
      auto result = store.insert_atomic(std::move(docs));
      store.storage_engine()->wait_durable(result.ticket);
    }
    // Recovery agrees: the crashed commit vanished, the retry is whole.
    auto store = DocumentStore::open_durable(dir.path(), sharded_options(0));
    EXPECT_EQ(store.storage_engine()->shard_count(), 4u);
    EXPECT_EQ(store.collection("problems").size(), 2u);
    EXPECT_EQ(store.collection("runs").size(), 3u);
    EXPECT_EQ(store.collection("runs").count(doc(R"({"k":1})")), 1u);
    EXPECT_EQ(store.collection("runs").count(doc(R"({"k":2})")), 1u);
  }
}

TEST(CrossShardCommit, InterleavedSingleShardWritersSeeNoTornCommit) {
  // A cross-shard commit crash must not disturb single-shard appends that
  // interleave with it — before and after the crashed commit.
  TempDir dir("gptc_cross_interleave");
  FaultInjector fault;
  {
    auto store =
        DocumentStore::open_durable(dir.path(), sharded_options(4, &fault));
    auto& c = store.collection("samples");
    for (int i = 0; i < 6; ++i) c.insert(doc(R"({"tag":"pre"})"));
    fault.arm(FaultPoint::CommitAppend, 1);
    // ids 7..10 span every shard: the batch takes the commit path.
    EXPECT_THROW(c.insert_batch({doc(R"({"tag":"batch"})"),
                                 doc(R"({"tag":"batch"})"),
                                 doc(R"({"tag":"batch"})"),
                                 doc(R"({"tag":"batch"})")}),
                 CrashInjected);
    for (int i = 0; i < 6; ++i) c.insert(doc(R"({"tag":"post"})"));
  }
  auto store = DocumentStore::open_durable(dir.path(), sharded_options(0));
  const auto& c = *store.find_collection("samples");
  EXPECT_EQ(c.count(doc(R"({"tag":"pre"})")), 6u);
  EXPECT_EQ(c.count(doc(R"({"tag":"batch"})")), 0u);
  EXPECT_EQ(c.count(doc(R"({"tag":"post"})")), 6u);
  // Iteration order is still globally ascending by id across the gap the
  // vanished batch left behind.
  std::int64_t prev = 0;
  c.for_each([&](const Json& d) {
    EXPECT_GT(d.at("_id").as_int(), prev);
    prev = d.at("_id").as_int();
    return true;
  });
}

TEST(Sharding, CrashDuringParallelRecoveryIsHarmless) {
  TempDir dir("gptc_shard_reccrash");
  std::string expected;
  {
    auto store = DocumentStore::open_durable(dir.path(), sharded_options(4));
    for (std::size_t i = 1; i <= kWorkloadOps; ++i) apply_op(store, i);
    expected = store.collection("samples").to_json().dump();
  }
  // One recovery task per shard; crash at the start of each in turn.
  for (std::uint64_t nth = 1; nth <= 4; ++nth) {
    FaultInjector fault;
    fault.arm(FaultPoint::RecoverShard, nth);
    EXPECT_THROW(
        DocumentStore::open_durable(dir.path(), sharded_options(4, &fault)),
        CrashInjected);
    // Recovery mutates nothing until it succeeds: a retry sees everything.
    auto store = DocumentStore::open_durable(dir.path(), sharded_options(4));
    EXPECT_EQ(store.collection("samples").to_json().dump(), expected);
  }
}

TEST(Sharding, CrossShardBatchSurvivesPowerLossWholeOrNot) {
  TempDir dir("gptc_shard_powerloss");
  EngineOptions opts = sharded_options(4);
  opts.async_commit = true;
  std::map<std::string, std::uint64_t> synced;
  {
    auto store = DocumentStore::open_durable(dir.path(), opts);
    auto& c = store.collection("samples");
    // ids 1..4 span every shard: one commit record, acked.
    auto acked = c.insert_batch({doc(R"({"b":1})"), doc(R"({"b":1})"),
                                 doc(R"({"b":1})"), doc(R"({"b":1})")});
    store.storage_engine()->wait_durable(acked.ticket);
    synced = synced_offsets(store, "samples");
    // A second cross-shard batch, never acked: power loss takes it whole.
    (void)c.insert_batch({doc(R"({"b":2})"), doc(R"({"b":2})"),
                          doc(R"({"b":2})"), doc(R"({"b":2})")});
  }
  power_loss(dir.path(), synced);
  auto store = DocumentStore::open_durable(dir.path(), opts);
  const auto& c = *store.find_collection("samples");
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.count(doc(R"({"b":1})")), 4u);
  EXPECT_EQ(c.count(doc(R"({"b":2})")), 0u);
}

// The TSan shard-concurrency target: parallel writers spread across
// shards, cross-shard batches, concurrent readers, and a thread forcing
// group-commit flushes and full compactions — exercising the commit-gate /
// shard-lock / WAL-mutex lock order under race detection.
TEST(ShardConcurrency, ParallelWritersAcrossShardsKeepGlobalOrder) {
  TempDir dir("gptc_shard_threads");
  EngineOptions opts = sharded_options(4);
  opts.group_commit = 8;
  std::string live;
  {
  auto store = DocumentStore::open_durable(dir.path(), opts);
  auto& c = store.collection("samples");
  c.create_index("w");

  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 40;  // every 10th op a cross-shard batch
  std::atomic<bool> done{false};
  std::atomic<std::size_t> reads{0};

  std::vector<std::thread> aux;
  for (int r = 0; r < 2; ++r) {
    aux.emplace_back([&c, &done, &reads] {
      const Json q = doc(R"({"w":{"$gte":4}})");
      while (!done.load(std::memory_order_acquire)) {
        for (const auto& h : c.find(q)) EXPECT_GE(h.at("w").as_int(), 4);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  aux.emplace_back([&store, &done] {
    while (!done.load(std::memory_order_acquire)) {
      store.sync();
      store.checkpoint_all();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&c, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Json d = Json::object();
        d["w"] = static_cast<std::int64_t>(w);
        d["i"] = static_cast<std::int64_t>(i);
        if (i % 10 == 9) {
          Json d2 = d;
          Json d3 = d;
          Json d4 = d;
          c.insert_batch({std::move(d), std::move(d2), std::move(d3),
                          std::move(d4)});
        } else {
          c.insert(std::move(d));
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : aux) t.join();

  // 36 singles + 4 batches of 4 per writer.
  constexpr std::size_t kExpected = kWriters * (36 + 4 * 4);
  EXPECT_EQ(c.size(), kExpected);
  EXPECT_GT(reads.load(), 0u);
  // The merged view is globally ordered by id (= insertion order) even
  // though writers raced across shards.
  std::int64_t prev = 0;
  std::size_t seen = 0;
  c.for_each([&](const Json& d) {
    EXPECT_GT(d.at("_id").as_int(), prev);
    prev = d.at("_id").as_int();
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, kExpected);
  live = c.to_json().dump();
  store.sync();
  }
  // And it all recovers (in parallel) to the same state.
  auto reopened = DocumentStore::open_durable(dir.path(), sharded_options(0));
  EXPECT_EQ(reopened.storage_engine()->shard_count(), 4u);
  EXPECT_EQ(reopened.collection("samples").to_json().dump(), live);
}

}  // namespace
}  // namespace gptc::db
