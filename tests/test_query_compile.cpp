// Differential and property tests for the compiled query subsystem
// (src/db/query).
//
// The compiler (CompiledQuery) must agree decision-for-decision with the
// matches() reference interpreter — the randomized sweep here drives both
// over the same documents and queries, covering missing paths, cross-type
// comparisons, numeric array segments, and $in duplicate keys. On top of
// that: shard-count invariance (find() dumps are byte-identical at any
// shard count, indexed or not), planner behaviour via Collection::explain
// (narrowest index first, intersection, full-scan fallback), throw parity
// between compile() and the interpreter, the compile-before-WAL-log
// guarantee (a malformed mutation query must not poison the WAL), and the
// per-problem parameter indexes SharedRepo declares and re-declares.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "crowd/repo.hpp"
#include "db/document_store.hpp"
#include "db/query/planner.hpp"
#include "db/query/program.hpp"

namespace gptc::db {
namespace {

namespace fs = std::filesystem;
using json::Json;
using query::CompiledQuery;

Json doc(const std::string& text) { return Json::parse(text); }

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// ---------------------------------------------------------------------------
// Randomized differential sweep: CompiledQuery::eval vs. matches()

/// Scalar pool shared by documents and query operands — includes values
/// that collide across types (2 vs 2.0 vs "2") and values absent from
/// every document.
Json random_scalar(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0: return Json(static_cast<std::int64_t>(rng() % 5));
    case 1: return Json(0.5 + static_cast<double>(rng() % 4));
    case 2: return Json(2.0);  // equal to int 2 across types
    case 3: return Json(std::string(1, static_cast<char>('x' + rng() % 3)));
    case 4: return Json(rng() % 2 == 0);
    case 5: return Json(nullptr);
    case 6: return Json(static_cast<std::int64_t>(100 + rng() % 3));
    default: return Json("zz");
  }
}

/// Documents exercise every lookup shape: scalars, nested objects, arrays
/// addressed by numeric segments, and fields that are often missing.
Json random_document(std::mt19937_64& rng) {
  Json d = Json::object();
  for (const char* key : {"a", "b", "k", "s"}) {
    if (rng() % 4 != 0) d[key] = random_scalar(rng);  // sometimes missing
  }
  if (rng() % 2 == 0) {
    Json arr = Json::array();
    const std::size_t n = rng() % 4;
    for (std::size_t i = 0; i < n; ++i) {
      arr.as_array().push_back(random_scalar(rng));
    }
    d["arr"] = std::move(arr);
  }
  if (rng() % 2 == 0) {
    Json nested = Json::object();
    nested["x"] = random_scalar(rng);
    if (rng() % 2 == 0) nested["c"] = random_scalar(rng);
    d["nested"] = std::move(nested);
  }
  return d;
}

const char* random_path(std::mt19937_64& rng) {
  static const char* kPaths[] = {
      "a",      "b",        "k",        "s",           "arr.0",
      "arr.1",  "arr.5",    "nested.x", "nested.c",    "missing",
      "a.deep", "nested.x.too_deep",    "missing.deep"};
  return kPaths[rng() % (sizeof(kPaths) / sizeof(kPaths[0]))];
}

/// One field condition: bare-equality scalar or a well-formed operator
/// object (the forms matches() accepts without throwing — throw parity for
/// malformed ones is covered separately below).
Json random_condition(std::mt19937_64& rng) {
  if (rng() % 3 == 0) return random_scalar(rng);  // bare equality
  Json ops = Json::object();
  const std::size_t n = 1 + rng() % 2;
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 8) {
      case 0: ops["$eq"] = random_scalar(rng); break;
      case 1: ops["$ne"] = random_scalar(rng); break;
      case 2: ops["$gt"] = random_scalar(rng); break;
      case 3: ops["$gte"] = random_scalar(rng); break;
      case 4: ops["$lt"] = random_scalar(rng); break;
      case 5: ops["$lte"] = random_scalar(rng); break;
      case 6: {
        Json arr = Json::array();
        const std::size_t m = rng() % 4;
        for (std::size_t j = 0; j < m; ++j) {
          arr.as_array().push_back(random_scalar(rng));
        }
        ops[rng() % 2 == 0 ? "$in" : "$nin"] = std::move(arr);
        break;
      }
      default: ops["$exists"] = rng() % 2 == 0; break;
    }
  }
  return ops;
}

Json random_query(std::mt19937_64& rng, int depth = 0) {
  Json q = Json::object();
  const std::size_t fields = rng() % 3;
  for (std::size_t i = 0; i < fields; ++i) {
    q[random_path(rng)] = random_condition(rng);
  }
  if (depth < 2 && rng() % 4 == 0) {
    Json arr = Json::array();
    const std::size_t n = rng() % 3;  // empty $or => false is covered
    for (std::size_t i = 0; i < n; ++i) {
      arr.as_array().push_back(random_query(rng, depth + 1));
    }
    q[rng() % 2 == 0 ? "$and" : "$or"] = std::move(arr);
  }
  if (depth < 2 && rng() % 6 == 0) {
    q["$not"] = random_query(rng, depth + 1);
  }
  return q;
}

TEST(CompiledQueryDifferential, RandomizedAgreesWithInterpreter) {
  std::mt19937_64 rng(0xC0FFEE0DDBA11ULL);
  std::size_t checked = 0;
  for (int round = 0; round < 400; ++round) {
    const Json q = random_query(rng);
    const CompiledQuery cq = CompiledQuery::compile(q);
    for (int i = 0; i < 16; ++i) {
      const Json d = random_document(rng);
      ASSERT_EQ(cq.eval(d), matches(d, q))
          << "query=" << q.dump() << " doc=" << d.dump();
      ++checked;
    }
  }
  EXPECT_EQ(checked, 6400u);
}

TEST(CompiledQueryDifferential, TargetedEdgeCases) {
  const struct {
    const char* query;
    const char* document;
  } cases[] = {
      // Missing paths: bare equality, ranges, $exists both ways.
      {R"({"missing":1})", R"({"a":1})"},
      {R"({"missing":{"$exists":false}})", R"({"a":1})"},
      {R"({"missing":{"$exists":false,"$gt":3}})", R"({"a":1})"},
      {R"({"a":{"$exists":true}})", R"({"a":null})"},
      // Type mismatches: compare_lt is false across types; $gte/$lte keep
      // only the string-ness test when the operand is neither.
      {R"({"a":{"$gt":"m"}})", R"({"a":5})"},
      {R"({"a":{"$lt":5}})", R"({"a":"m"})"},
      {R"({"a":{"$gte":true}})", R"({"a":"m"})"},
      {R"({"a":{"$gte":true}})", R"({"a":5})"},
      {R"({"a":{"$lte":null}})", R"({"a":"x"})"},
      {R"({"a":{"$gt":true}})", R"({"a":true})"},
      // Cross-type numeric equality.
      {R"({"a":2})", R"({"a":2.0})"},
      {R"({"a":{"$in":[2,2.0]}})", R"({"a":2})"},
      {R"({"a":{"$in":[2,2.0,2]}})", R"({"a":2.0})"},
      {R"({"a":{"$nin":[2,2.0]}})", R"({"a":2})"},
      // Numeric array segments (and out-of-range / non-array steps).
      {R"({"arr.1":"y"})", R"({"arr":["x","y"]})"},
      {R"({"arr.2":{"$exists":false}})", R"({"arr":["x","y"]})"},
      {R"({"arr.0.x":1})", R"({"arr":[{"x":1}]})"},
      {R"({"a.0":1})", R"({"a":5})"},
      // Object-valued bare equality (no $-keys => literal comparison).
      {R"({"nested":{"x":1}})", R"({"nested":{"x":1}})"},
      {R"({"nested":{"x":1}})", R"({"nested":{"x":1,"y":2}})"},
      // Conjunction/disjunction structure, including empty $or.
      {R"({"$or":[]})", R"({"a":1})"},
      {R"({"$and":[]})", R"({"a":1})"},
      {R"({"$or":[{"a":1},{"b":2}]})", R"({"b":2})"},
      {R"({"$not":{"a":1}})", R"({"a":1})"},
      {R"({"$and":[{"a":{"$gte":1}},{"a":{"$lt":3}}]})", R"({"a":2})"},
      {R"({})", R"({"a":1})"},
  };
  for (const auto& c : cases) {
    const Json q = doc(c.query);
    const Json d = doc(c.document);
    const CompiledQuery cq = CompiledQuery::compile(q);
    EXPECT_EQ(cq.eval(d), matches(d, q))
        << "query=" << c.query << " doc=" << c.document;
  }
}

TEST(CompiledQuery, ThrowParityWithInterpreter) {
  const Json d = doc(R"({"a":1})");
  for (const char* text :
       {R"({"a":{"$bogus":1}})",      // unknown operator
        R"({"a":{"$in":3}})",         // $in needs an array
        R"({"a":{"$nin":"x"}})",      // $nin needs an array
        R"({"$not":5})",              // $not needs an object
        R"({"$and":3})",              // $and needs an array
        R"({"a":{"$exists":"y"}})"})  // $exists needs a bool
  {
    const Json q = doc(text);
    EXPECT_THROW(CompiledQuery::compile(q), json::JsonError) << text;
    EXPECT_THROW(matches(d, q), json::JsonError) << text;
  }
}

// ---------------------------------------------------------------------------
// Shard-count invariance

TEST(CompiledShardInvariance, FindsAreByteIdenticalAcrossShardCounts) {
  std::mt19937_64 rng(0x5EED5EEDULL);
  std::vector<Json> docs;
  for (int i = 0; i < 60; ++i) docs.push_back(random_document(rng));
  std::vector<Json> queries;
  for (int i = 0; i < 40; ++i) queries.push_back(random_query(rng));

  Collection flat("t");
  for (const Json& d : docs) flat.insert(Json(d));

  for (const std::size_t shards : {std::size_t{2}, std::size_t{3},
                                   std::size_t{8}}) {
    Collection sharded("t", shards);
    sharded.create_index("a");
    sharded.create_index("nested.x");
    for (const Json& d : docs) sharded.insert(Json(d));
    for (const Json& q : queries) {
      const auto a = sharded.find(q);
      const auto b = flat.find(q);
      ASSERT_EQ(a.size(), b.size()) << "shards=" << shards << " " << q.dump();
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].dump(), b[i].dump())
            << "shards=" << shards << " " << q.dump();
      }
      EXPECT_EQ(sharded.count(q), flat.count(q)) << q.dump();
      EXPECT_EQ(sharded.exists(q), flat.exists(q)) << q.dump();
    }
  }
}

// ---------------------------------------------------------------------------
// Planner behaviour (via Collection::explain)

/// 64 docs: "k" splits them 2 ways (32 per key), "u" 16 ways (4 per key).
Collection planner_collection() {
  Collection c("t");
  c.create_index("k");
  c.create_index("u");
  for (std::int64_t i = 0; i < 64; ++i) {
    Json d = Json::object();
    d["k"] = i % 2;
    d["u"] = i % 16;
    d["w"] = i;
    c.insert(std::move(d));
  }
  return c;
}

TEST(Planner, PicksNarrowestIndexFirst) {
  const Collection c = planner_collection();
  const Json plan = c.explain(doc(R"({"k":1,"u":3})"));
  const auto& shards = plan.at("shards").as_array();
  ASSERT_EQ(shards.size(), 1u);
  const Json& s = shards[0];
  EXPECT_TRUE(s.at("index_scan").as_bool());
  const auto& indexes = s.at("indexes").as_array();
  ASSERT_EQ(indexes.size(), 2u);
  // Ranked narrowest-first: u (estimate 4) before k (estimate 32); the
  // narrowest is always materialized.
  EXPECT_EQ(indexes[0].at("path").as_string(), "u");
  EXPECT_EQ(indexes[0].at("estimate").as_int(), 4);
  EXPECT_TRUE(indexes[0].at("applied").as_bool());
  EXPECT_EQ(indexes[1].at("path").as_string(), "k");
  EXPECT_EQ(indexes[1].at("estimate").as_int(), 32);
  // Candidates never exceed the narrowest estimate.
  EXPECT_LE(s.at("candidates").as_int(), 4);
  // And the plan is consistent with the actual result set.
  EXPECT_EQ(c.count(doc(R"({"k":1,"u":3})")), 4u);
}

TEST(Planner, FullScanWhenNoIndexUsable) {
  const Collection c = planner_collection();
  const Json plan = c.explain(doc(R"({"w":{"$gte":60}})"));
  const Json& s = plan.at("shards").as_array()[0];
  EXPECT_FALSE(s.at("index_scan").as_bool());
  EXPECT_EQ(s.at("candidates").as_int(), 64);
  EXPECT_TRUE(s.at("indexes").as_array().empty());
}

TEST(Planner, InDuplicateKeysAreNotDoubleCounted) {
  const Collection c = planner_collection();
  // 2 and 2.0 hit the same index key; the estimate must dedup like
  // candidates() does.
  const Json plan = c.explain(doc(R"({"u":{"$in":[2,2.0]}})"));
  const Json& s = plan.at("shards").as_array()[0];
  ASSERT_TRUE(s.at("index_scan").as_bool());
  const auto& indexes = s.at("indexes").as_array();
  ASSERT_EQ(indexes.size(), 1u);
  EXPECT_EQ(indexes[0].at("estimate").as_int(), 4);
  EXPECT_EQ(s.at("candidates").as_int(), 4);
}

TEST(Planner, ExplainShape) {
  const Collection c = planner_collection();
  const Json q = doc(R"({"u":3})");
  const Json plan = c.explain(q);
  EXPECT_EQ(plan.at("query").dump(), q.dump());
  for (const Json& s : plan.at("shards").as_array()) {
    EXPECT_TRUE(s.at("shard").is_number());
    EXPECT_TRUE(s.at("shard_size").is_number());
    EXPECT_TRUE(s.at("index_scan").is_bool());
    EXPECT_TRUE(s.at("candidates").is_number());
    for (const Json& idx : s.at("indexes").as_array()) {
      EXPECT_TRUE(idx.at("path").is_string());
      EXPECT_TRUE(idx.at("estimate").is_number());
      EXPECT_TRUE(idx.at("applied").is_bool());
    }
  }
}

// ---------------------------------------------------------------------------
// Compile-before-WAL-log: a malformed mutation query throws before the
// operation is logged, so it can never poison recovery.

TEST(CompiledDurability, MalformedMutationQueryDoesNotPoisonWal) {
  TempDir dir("gptc_query_compile_wal");
  {
    auto store = DocumentStore::open_durable(dir.path());
    auto& c = store.collection("samples");
    c.insert(doc(R"({"k":1,"v":"a"})"));
    c.insert(doc(R"({"k":2,"v":"b"})"));
    EXPECT_THROW(c.update(doc(R"({"k":{"$bogus":1}})"), doc(R"({"v":"x"})")),
                 json::JsonError);
    EXPECT_THROW(c.remove(doc(R"({"k":{"$in":"not-an-array"}})")),
                 json::JsonError);
    // The store stays fully usable after the rejected mutations.
    c.insert(doc(R"({"k":3,"v":"c"})"));
  }
  // Recovery replays the WAL; a poisoned frame would throw here.
  auto store = DocumentStore::open_durable(dir.path());
  ASSERT_NE(store.find_collection("samples"), nullptr);
  const auto& c = *store.find_collection("samples");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.find_one(doc(R"({"k":1})")).at("v").as_string(), "a");
  EXPECT_EQ(c.find_one(doc(R"({"k":3})")).at("v").as_string(), "c");
}

// ---------------------------------------------------------------------------
// Per-problem parameter indexes (SharedRepo)

crowd::EvalUpload bench_eval(std::int64_t i) {
  crowd::EvalUpload e;
  e.task_parameters = doc(R"({"m":1000,"n":1000})");
  e.tuning_parameters = Json::object();
  e.tuning_parameters["mb"] = i % 8;
  e.tuning_parameters["nb"] = i % 4;
  e.output = 1.0 + static_cast<double>(i);
  return e;
}

TEST(CrowdIndexes, PerProblemIndexesDeclaredAndRedeclaredOnReopen) {
  TempDir dir("gptc_query_compile_crowd");
  std::string key;
  {
    auto repo = crowd::SharedRepo::open_durable(dir.path());
    key = repo.register_user("alice", "alice@lab.gov");
    std::vector<crowd::EvalUpload> evals;
    for (std::int64_t i = 0; i < 32; ++i) evals.push_back(bench_eval(i));
    repo.upload_batch(key, "pdgeqrf", evals);

    // The first upload declared tuning/task parameter indexes; the planner
    // narrows below the problem partition through them.
    const Json plan =
        repo.explain_where(key, "pdgeqrf", "tuning_parameters.mb = 3");
    bool saw_param_index = false;
    for (const Json& s : plan.at("shards").as_array()) {
      EXPECT_TRUE(s.at("index_scan").as_bool());
      for (const Json& idx : s.at("indexes").as_array()) {
        if (idx.at("path").as_string() == "tuning_parameters.mb") {
          saw_param_index = true;
          EXPECT_TRUE(idx.at("applied").as_bool());
        }
      }
    }
    EXPECT_TRUE(saw_param_index);
    repo.sync();
  }
  // Index definitions are in-memory: reopen must re-declare them from the
  // parameter names persisted in the problems-catalog descriptor.
  auto reopened = crowd::SharedRepo::open_durable(dir.path());
  const Json plan =
      reopened.explain_where(key, "pdgeqrf", "tuning_parameters.nb = 1");
  bool saw_param_index = false;
  for (const Json& s : plan.at("shards").as_array()) {
    for (const Json& idx : s.at("indexes").as_array()) {
      if (idx.at("path").as_string() == "tuning_parameters.nb") {
        saw_param_index = true;
      }
    }
  }
  EXPECT_TRUE(saw_param_index);
  // The records are still found through the re-declared indexes.
  EXPECT_EQ(
      reopened.query_where(key, "pdgeqrf", "tuning_parameters.nb = 1").size(),
      8u);
}

}  // namespace
}  // namespace gptc::db
