#include <gtest/gtest.h>

#include <cmath>

#include "gp/gaussian_process.hpp"
#include "gp/kernel.hpp"
#include "gp/lcm.hpp"
#include "opt/optimize.hpp"
#include "rng/rng.hpp"

namespace gptc::gp {
namespace {

la::Matrix to_matrix(const std::vector<la::Vector>& rows) {
  return la::Matrix::from_rows(rows);
}

TEST(Kernel, SelfCovarianceEqualsSignalVariance) {
  for (auto kind : {KernelKind::SquaredExponential, KernelKind::Matern52}) {
    Kernel k(kind, 3);
    la::Vector h = {std::log(0.2), std::log(0.5), std::log(1.0),
                    std::log(2.5)};
    k.set_log_hyper(h);
    la::Vector x = {0.3, 0.7, 0.1};
    EXPECT_NEAR(k(x, x), 2.5, 1e-12);
  }
}

TEST(Kernel, DecaysWithDistance) {
  for (auto kind : {KernelKind::SquaredExponential, KernelKind::Matern52}) {
    Kernel k(kind, 1);
    la::Vector a = {0.0}, b = {0.1}, c = {0.5};
    EXPECT_GT(k(a, a), k(a, b));
    EXPECT_GT(k(a, b), k(a, c));
    EXPECT_GT(k(a, c), 0.0);
  }
}

TEST(Kernel, SymmetricAndStationary) {
  Kernel k(KernelKind::Matern52, 2);
  la::Vector a = {0.1, 0.9}, b = {0.4, 0.2};
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
  la::Vector a2 = {0.2, 1.0}, b2 = {0.5, 0.3};  // shifted by (0.1, 0.1)
  EXPECT_NEAR(k(a, b), k(a2, b2), 1e-12);
}

TEST(Kernel, ArdLengthscalesScalePerDimension) {
  Kernel k(KernelKind::SquaredExponential, 2);
  k.set_log_hyper({std::log(0.1), std::log(10.0), 0.0});
  la::Vector o = {0.0, 0.0}, dx = {0.2, 0.0}, dy = {0.0, 0.2};
  // Dimension 0 has a short lengthscale: moving along it decays much more.
  EXPECT_LT(k(o, dx), k(o, dy));
}

TEST(Kernel, GramMatrixMatchesPairwise) {
  rng::Rng rng(1);
  const auto pts = opt::random_design(6, 2, rng);
  Kernel k(KernelKind::Matern52, 2);
  const la::Matrix g = k.gram(to_matrix(pts));
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(g(i, j), k(pts[i], pts[j]), 1e-14);
}

TEST(Kernel, CrossMatrixShapeAndValues) {
  rng::Rng rng(2);
  const auto a = opt::random_design(4, 3, rng);
  const auto b = opt::random_design(5, 3, rng);
  Kernel k(KernelKind::SquaredExponential, 3);
  const la::Matrix c = k.cross(to_matrix(a), to_matrix(b));
  EXPECT_EQ(c.rows(), 4u);
  EXPECT_EQ(c.cols(), 5u);
  EXPECT_NEAR(c(2, 3), k(a[2], b[3]), 1e-14);
}

TEST(Kernel, RejectsBadHyperSize) {
  Kernel k(KernelKind::Matern52, 2);
  EXPECT_THROW(k.set_log_hyper({0.0}), std::invalid_argument);
}

class GpFitTest : public ::testing::Test {
 protected:
  // Train on a smooth 1-d function.
  void fit_smooth(GaussianProcess& gp, int n, double noise = 0.0) {
    rng::Rng rng(42);
    std::vector<la::Vector> xs;
    la::Vector ys;
    for (int i = 0; i < n; ++i) {
      const double x = (i + 0.5) / n;
      xs.push_back({x});
      ys.push_back(std::sin(6.0 * x) + noise * rng.normal());
    }
    rng::Rng fit_rng(7);
    gp.fit(to_matrix(xs), ys, fit_rng);
  }
};

TEST_F(GpFitTest, InterpolatesNoiselessData) {
  GaussianProcess gp(1);
  fit_smooth(gp, 15);
  for (double x : {0.11, 0.43, 0.77}) {
    const Prediction p = gp.predict({x});
    EXPECT_NEAR(p.mean, std::sin(6.0 * x), 0.05) << "at x=" << x;
  }
}

TEST_F(GpFitTest, VarianceSmallerNearDataThanFarAway) {
  GaussianProcess gp(1);
  rng::Rng rng(3);
  std::vector<la::Vector> xs = {{0.1}, {0.15}, {0.2}, {0.25}, {0.3}};
  la::Vector ys = {0.0, 0.3, 0.1, -0.2, 0.4};
  gp.fit(to_matrix(xs), ys, rng);
  EXPECT_LT(gp.predict({0.2}).variance, gp.predict({0.95}).variance);
}

TEST_F(GpFitTest, PredictionRevertsToMeanFarFromData) {
  GaussianProcess gp(1);
  rng::Rng rng(4);
  std::vector<la::Vector> xs = {{0.05}, {0.1}, {0.15}};
  la::Vector ys = {10.0, 12.0, 11.0};
  gp.fit(to_matrix(xs), ys, rng);
  // Far from data the standardized mean reverts to 0 => raw mean ~ 11.
  EXPECT_NEAR(gp.predict({0.99}).mean, 11.0, 1.5);
}

TEST_F(GpFitTest, SingleSampleWorks) {
  GaussianProcess gp(2);
  rng::Rng rng(5);
  gp.fit(to_matrix({{0.5, 0.5}}), {3.0}, rng);
  EXPECT_NEAR(gp.predict({0.5, 0.5}).mean, 3.0, 1e-6);
  EXPECT_TRUE(gp.is_fitted());
  EXPECT_EQ(gp.num_samples(), 1u);
}

TEST_F(GpFitTest, RejectsNonFiniteOutputs) {
  GaussianProcess gp(1);
  rng::Rng rng(6);
  EXPECT_THROW(
      gp.fit(to_matrix({{0.1}, {0.2}}), {1.0, std::nan("")}, rng),
      std::invalid_argument);
}

TEST_F(GpFitTest, RejectsShapeMismatch) {
  GaussianProcess gp(1);
  rng::Rng rng(6);
  EXPECT_THROW(gp.fit(to_matrix({{0.1}, {0.2}}), {1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(gp.fit(to_matrix({{0.1, 0.2}}), {1.0}, rng),
               std::invalid_argument);
}

TEST_F(GpFitTest, PredictBeforeFitThrows) {
  GaussianProcess gp(1);
  EXPECT_THROW(gp.predict({0.5}), std::logic_error);
}

TEST_F(GpFitTest, PredictDimMismatchThrows) {
  GaussianProcess gp(2);
  rng::Rng rng(7);
  gp.fit(to_matrix({{0.1, 0.2}, {0.3, 0.4}}), {1.0, 2.0}, rng);
  EXPECT_THROW(gp.predict({0.5}), std::invalid_argument);
}

TEST_F(GpFitTest, LogMarginalLikelihoodImprovesWithFit) {
  // A fitted GP should have higher logML than one with arbitrary fixed
  // hyperparameters on the same data.
  rng::Rng rng(8);
  std::vector<la::Vector> xs;
  la::Vector ys;
  for (int i = 0; i < 25; ++i) {
    const double x = (i + 0.5) / 25.0;
    xs.push_back({x});
    ys.push_back(std::sin(8.0 * x));
  }
  GaussianProcess fitted(1);
  rng::Rng r1(9);
  fitted.fit(to_matrix(xs), ys, r1);

  GaussianProcess fixed(1);
  fixed.refit_state(to_matrix(xs), ys);  // default hypers, no optimization
  EXPECT_GE(fitted.log_marginal_likelihood(),
            fixed.log_marginal_likelihood() - 1e-6);
}

TEST_F(GpFitTest, NoisyDataLearnsNoise) {
  GaussianProcess gp(1);
  fit_smooth(gp, 60, /*noise=*/0.3);
  // With noisy targets the learned noise variance should be clearly
  // nonzero (in standardized units, roughly noise^2 / var(y)).
  EXPECT_GT(gp.noise_variance(), 1e-4);
}

TEST_F(GpFitTest, RefitStateKeepsHyperparameters) {
  GaussianProcess gp(1);
  fit_smooth(gp, 20);
  const la::Vector h = gp.log_hyper();
  gp.refit_state(to_matrix({{0.1}, {0.9}}), {0.0, 1.0});
  const la::Vector h2 = gp.log_hyper();
  ASSERT_EQ(h.size(), h2.size());
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_DOUBLE_EQ(h[i], h2[i]);
  EXPECT_EQ(gp.num_samples(), 2u);
}

TEST(GpDeterminism, SameSeedSameModel) {
  std::vector<la::Vector> xs = {{0.1}, {0.4}, {0.8}, {0.9}};
  la::Vector ys = {1.0, 0.5, 2.0, 1.5};
  GaussianProcess a(1), b(1);
  rng::Rng ra(11), rb(11);
  a.fit(la::Matrix::from_rows(xs), ys, ra);
  b.fit(la::Matrix::from_rows(xs), ys, rb);
  EXPECT_DOUBLE_EQ(a.predict({0.33}).mean, b.predict({0.33}).mean);
  EXPECT_DOUBLE_EQ(a.predict({0.33}).variance, b.predict({0.33}).variance);
}

// ---------------------------------------------------------------------------
// LCM

class LcmTest : public ::testing::Test {
 protected:
  // Two correlated tasks: f2 = 1.8 * f1 + 0.3 on [0,1].
  static double f1(double x) { return std::sin(5.0 * x) + 2.0; }
  static double f2(double x) { return 1.8 * f1(x) + 0.3; }

  std::vector<TaskData> make_tasks(int n_source, int n_target) {
    rng::Rng rng(21);
    std::vector<TaskData> tasks(2);
    std::vector<la::Vector> xs;
    la::Vector ys;
    for (int i = 0; i < n_source; ++i) {
      const double x = rng.uniform();
      xs.push_back({x});
      ys.push_back(f1(x));
    }
    tasks[0] = TaskData{la::Matrix::from_rows(xs), ys};
    xs.clear();
    ys.clear();
    for (int i = 0; i < n_target; ++i) {
      const double x = rng.uniform();
      xs.push_back({x});
      ys.push_back(f2(x));
    }
    tasks[1] = TaskData{xs.empty() ? la::Matrix() : la::Matrix::from_rows(xs),
                        ys};
    return tasks;
  }
};

TEST_F(LcmTest, UnequalSampleCountsSupported) {
  LcmModel model(1, 2);
  rng::Rng rng(31);
  model.fit(make_tasks(40, 5), rng);
  EXPECT_TRUE(model.is_fitted());
  EXPECT_EQ(model.num_samples(0), 40u);
  EXPECT_EQ(model.num_samples(1), 5u);
}

TEST_F(LcmTest, TransferImprovesSparseTaskPrediction) {
  // With only 4 target samples, the LCM should predict the target function
  // better than a single-task GP trained on those 4 samples, by exploiting
  // the correlated 40-sample source task.
  const auto tasks = make_tasks(40, 4);

  LcmModel lcm(1, 2);
  rng::Rng r1(32);
  lcm.fit(tasks, r1);

  GaussianProcess solo(1);
  rng::Rng r2(33);
  solo.fit(tasks[1].x, tasks[1].y, r2);

  double lcm_err = 0.0, solo_err = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double x = (i + 0.5) / 50.0;
    const double truth = f2(x);
    lcm_err += std::abs(lcm.predict(1, {x}).mean - truth);
    solo_err += std::abs(solo.predict({x}).mean - truth);
  }
  EXPECT_LT(lcm_err, solo_err);
}

TEST_F(LcmTest, ZeroSampleTargetTaskAllowed) {
  LcmModel model(1, 2);
  rng::Rng rng(34);
  model.fit(make_tasks(30, 0), rng);
  // Predictions for the empty task must exist and be finite.
  const Prediction p = model.predict(1, {0.5});
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_TRUE(std::isfinite(p.variance));
  EXPECT_GT(p.variance, 0.0);
}

TEST_F(LcmTest, CorrelatedTasksGetPositiveCrossCovariance) {
  LcmModel model(1, 2);
  rng::Rng rng(35);
  model.fit(make_tasks(40, 20), rng);
  EXPECT_GT(model.task_covariance(0, 1), 0.0);
  EXPECT_GT(model.task_covariance(0, 0), 0.0);
  EXPECT_GT(model.task_covariance(1, 1), 0.0);
}

TEST_F(LcmTest, SubsamplingCapRespected) {
  LcmOptions opt;
  opt.max_samples_per_task = 10;
  LcmModel model(1, 2, opt);
  rng::Rng rng(36);
  model.fit(make_tasks(50, 30), rng);
  EXPECT_EQ(model.num_samples(0), 10u);
  EXPECT_EQ(model.num_samples(1), 10u);
}

TEST_F(LcmTest, PredictInterpolatesDenseTask) {
  LcmModel model(1, 2);
  rng::Rng rng(37);
  model.fit(make_tasks(40, 10), rng);
  double err = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double x = (i + 0.5) / 20.0;
    err += std::abs(model.predict(0, {x}).mean - f1(x));
  }
  EXPECT_LT(err / 20.0, 0.15);
}

TEST_F(LcmTest, RejectsBadInputs) {
  LcmModel model(1, 2);
  rng::Rng rng(38);
  EXPECT_THROW(model.fit({}, rng), std::invalid_argument);
  EXPECT_THROW(model.predict(0, {0.5}), std::logic_error);
  std::vector<TaskData> empty_tasks(2);
  EXPECT_THROW(model.fit(empty_tasks, rng), std::invalid_argument);
  model.fit(make_tasks(10, 5), rng);
  EXPECT_THROW(model.predict(5, {0.5}), std::out_of_range);
  EXPECT_THROW(model.predict(0, {0.5, 0.5}), std::invalid_argument);
}

TEST_F(LcmTest, TaskViewMatchesDirectPredict) {
  auto model = std::make_shared<LcmModel>(1, 2);
  rng::Rng rng(39);
  model->fit(make_tasks(20, 8), rng);
  const auto view = LcmModel::task_view(model, 1);
  const Prediction a = view->predict({0.4});
  const Prediction b = model->predict(1, {0.4});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.variance, b.variance);
  EXPECT_EQ(view->dim(), 1u);
}

}  // namespace
}  // namespace gptc::gp
