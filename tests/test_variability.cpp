// Tests of the performance-variability detector (the paper's stated
// future work, implemented in src/crowd/variability.*).
#include "crowd/variability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "crowd/repo.hpp"

namespace gptc::crowd {
namespace {

using json::Json;

Json record(int id, double mb, double output) {
  Json r = Json::object();
  r["_id"] = std::int64_t{id};
  r["task_parameters"] = Json::parse(R"({"m":1000})");
  Json tuning = Json::object();
  tuning["mb"] = static_cast<std::int64_t>(mb);
  r["tuning_parameters"] = std::move(tuning);
  Json out = Json::object();
  out["runtime"] = std::isfinite(output) ? Json(output) : Json(nullptr);
  r["output"] = std::move(out);
  r["machine_configuration"] = Json::parse(R"({"machine_name":"Cori"})");
  r["software_configuration"] = Json::object();
  return r;
}

TEST(RobustStats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({1.0, 9.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median_of({1.0, 2.0, 3.0, 10.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(RobustStats, Mad) {
  // values 1,2,3,4,100: median 3, deviations 2,1,0,1,97 -> MAD 1.
  EXPECT_DOUBLE_EQ(mad_of({1, 2, 3, 4, 100}, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(mad_of({5, 5, 5}, 5.0), 0.0);
}

TEST(Variability, GroupsRepeatedConfigurations) {
  std::vector<Json> records;
  for (int i = 0; i < 5; ++i) records.push_back(record(i, 4, 1.0 + 0.01 * i));
  records.push_back(record(10, 8, 2.0));  // singleton: not a group
  const VariabilityReport report = detect_variability(records);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].outputs.size(), 5u);
  EXPECT_NEAR(report.groups[0].median, 1.02, 1e-12);
}

TEST(Variability, FlagsOutlierRecord) {
  std::vector<Json> records;
  for (int i = 0; i < 7; ++i) records.push_back(record(i, 4, 1.0 + 0.005 * i));
  records.push_back(record(99, 4, 9.0));  // a 9x spike: system noise
  const VariabilityReport report = detect_variability(records);
  ASSERT_EQ(report.groups.size(), 1u);
  const auto ids = report.outlier_record_ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 99);
  EXPECT_EQ(report.total_outliers(), 1u);
}

TEST(Variability, CleanGroupHasNoOutliers) {
  std::vector<Json> records;
  for (int i = 0; i < 10; ++i)
    records.push_back(record(i, 4, 1.0 + 0.002 * (i % 3)));
  const VariabilityReport report = detect_variability(records);
  EXPECT_EQ(report.total_outliers(), 0u);
}

TEST(Variability, NoisyGroupDetection) {
  std::vector<Json> records;
  // Relative MAD ~ 0.2: clearly noisy.
  const double outputs[] = {1.0, 1.3, 0.8, 1.2, 0.7};
  for (int i = 0; i < 5; ++i) records.push_back(record(i, 4, outputs[i]));
  // A quiet group at mb=8.
  for (int i = 10; i < 14; ++i)
    records.push_back(record(i, 8, 2.0 + 0.001 * i));
  const VariabilityReport report = detect_variability(records);
  ASSERT_EQ(report.groups.size(), 2u);
  const auto noisy = report.noisy_groups();
  ASSERT_EQ(noisy.size(), 1u);
  EXPECT_GT(noisy[0]->relative_mad, 0.05);
  EXPECT_FALSE(report.summary().empty());
}

TEST(Variability, FailedRecordsAreIgnored) {
  std::vector<Json> records;
  records.push_back(record(1, 4, 1.0));
  records.push_back(record(2, 4, std::numeric_limits<double>::quiet_NaN()));
  records.push_back(record(3, 4, 1.01));
  const VariabilityReport report = detect_variability(records);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].outputs.size(), 2u);
}

TEST(Variability, DifferentEnvironmentsAreDifferentGroups) {
  std::vector<Json> records = {record(1, 4, 1.0), record(2, 4, 1.0)};
  records.push_back(record(3, 4, 5.0));
  records.back()["machine_configuration"] =
      Json::parse(R"({"machine_name":"Summit"})");
  records.push_back(record(4, 4, 5.1));
  records.back()["machine_configuration"] =
      Json::parse(R"({"machine_name":"Summit"})");
  const VariabilityReport report = detect_variability(records);
  // Two groups: Cori (1.0, 1.0) and Summit (5.0, 5.1); the 5x difference
  // across machines is NOT variability.
  ASSERT_EQ(report.groups.size(), 2u);
  EXPECT_EQ(report.total_outliers(), 0u);
}

TEST(Variability, MinRepeatsOption) {
  std::vector<Json> records = {record(1, 4, 1.0), record(2, 4, 1.1),
                               record(3, 4, 1.2)};
  VariabilityOptions opts;
  opts.min_repeats = 4;
  EXPECT_TRUE(detect_variability(records, opts).groups.empty());
}

TEST(Variability, EndToEndThroughSharedRepo) {
  SharedRepo repo(3);
  const std::string key = repo.register_user("carol", "c@x.y");
  for (int i = 0; i < 6; ++i) {
    EvalUpload e;
    e.task_parameters = Json::parse(R"({"m":1000})");
    e.tuning_parameters = Json::parse(R"({"mb":4})");
    e.output = i == 5 ? 50.0 : 1.0 + 0.01 * i;  // one spike
    repo.upload(key, "demo", e);
  }
  MetaDescription meta;
  meta.api_key = key;
  meta.tuning_problem_name = "demo";
  const VariabilityReport report = repo.query_variability_report(meta);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.total_outliers(), 1u);
}

}  // namespace
}  // namespace gptc::crowd
