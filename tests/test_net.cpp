// Protocol-conformance tests for the crowd-repo server (src/net): every
// malformed input — truncated or oversized frames, garbage JSON, wrong
// protocol version, bad credentials, stalled clients — must produce the
// documented typed error and leave the server serving. Each abuse case
// ends with a health round trip over a fresh connection: the server
// survived. CI runs this suite under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "crowd/repo.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

namespace gptc::net {
namespace {

namespace fs = std::filesystem;
using json::Json;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

/// One durable repo + running server per fixture, async group commit on
/// (the production serving mode).
class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>(
        "gptc_net_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    db::engine::EngineOptions eo;
    eo.async_commit = true;
    repo_ = std::make_unique<crowd::SharedRepo>(
        crowd::SharedRepo::open_durable(dir_->path(), 7, eo));
    api_key_ = repo_->register_user("alice", "alice@example.org");
    repo_->add_machine_alias("Cori", {"cori", "cori-knl"});
  }

  void start(ServerOptions opts = {}) {
    opts.port = 0;
    server_ = std::make_unique<CrowdServer>(*repo_, opts);
    server_->start();
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  CrowdClient client() { return CrowdClient("127.0.0.1", server_->port()); }

  /// Raw connection for hand-crafted (malformed) frames.
  Socket raw_connect() {
    return tcp_connect("127.0.0.1", server_->port(), /*recv_timeout_ms=*/5000,
                       /*send_timeout_ms=*/5000);
  }

  /// Reads one response frame; fails the test on a broken stream.
  Json read_frame(Socket& sock) {
    char header[kHeaderSize];
    EXPECT_EQ(sock.recv_exact(header, kHeaderSize), IoStatus::Ok);
    const DecodedHeader h = decode_header(header);
    EXPECT_FALSE(h.error.has_value());
    std::string body(h.payload_size, '\0');
    EXPECT_EQ(sock.recv_exact(body.data(), body.size()), IoStatus::Ok);
    return Json::parse(body);
  }

  static std::string error_code_of(const Json& response) {
    EXPECT_FALSE(response.at("ok").as_bool());
    return response.at("error").at("code").as_string();
  }

  /// The liveness probe every abuse case ends with: a fresh connection
  /// still gets a healthy answer, so the malformed input did not take the
  /// server down.
  void expect_alive() {
    EXPECT_EQ(client().health().at("status").as_string(), "ok");
  }

  crowd::EvalUpload make_eval(int mb, double runtime,
                              const std::string& machine = "cori") {
    crowd::EvalUpload e;
    e.task_parameters = Json::object();
    e.task_parameters["m"] = static_cast<std::int64_t>(1000);
    e.tuning_parameters = Json::object();
    e.tuning_parameters["mb"] = static_cast<std::int64_t>(mb);
    e.output = runtime;
    e.machine_configuration = Json::object();
    e.machine_configuration["machine_name"] = machine;
    return e;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<crowd::SharedRepo> repo_;
  std::unique_ptr<CrowdServer> server_;
  std::string api_key_;
};

// ---------------------------------------------------------------------------
// Happy paths

TEST_F(NetTest, HealthAndStats) {
  start();
  CrowdClient c = client();
  EXPECT_EQ(c.health().at("status").as_string(), "ok");
  const Json stats = c.stats();
  EXPECT_GE(stats.at("connections_accepted").as_int(), 1);
  EXPECT_EQ(stats.at("records_uploaded").as_int(), 0);
}

TEST_F(NetTest, UploadThenQueryRoundTrip) {
  start();
  CrowdClient c = client();
  const std::vector<std::int64_t> ids = c.upload(
      api_key_, "pdgeqrf",
      {make_eval(4, 1.5), make_eval(8, 2.5), make_eval(16, 3.5)});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_NE(ids[0], ids[1]);

  // The server normalized the machine tag on ingest ("cori" -> "Cori").
  const auto records = c.query(
      api_key_, "pdgeqrf",
      "machine_configuration.machine_name = 'Cori' AND "
      "tuning_parameters.mb >= 8");
  ASSERT_EQ(records.size(), 2u);
  for (const Json& r : records) {
    EXPECT_EQ(r.at("machine_configuration").at("machine_name").as_string(),
              "Cori");
    EXPECT_GE(r.at("tuning_parameters").at("mb").as_int(), 8);
  }

  const Json stats = c.stats();
  EXPECT_EQ(stats.at("records_uploaded").as_int(), 3);
}

TEST_F(NetTest, EachRequestAuthenticatesExactlyOnce) {
  start();
  CrowdClient c = client();
  c.upload(api_key_, "pdgeqrf", {make_eval(4, 1.5)});  // warm catalog paths

  // One stored-key hash per request: the handler authenticates once and
  // hands the AuthedUser proof to the repo, which must not re-hash.
  std::uint64_t before = crowd::SharedRepo::auth_hash_invocations();
  c.upload(api_key_, "pdgeqrf", {make_eval(8, 2.5)});
  EXPECT_EQ(crowd::SharedRepo::auth_hash_invocations() - before, 1u);

  before = crowd::SharedRepo::auth_hash_invocations();
  c.query(api_key_, "pdgeqrf", "tuning_parameters.mb >= 4");
  EXPECT_EQ(crowd::SharedRepo::auth_hash_invocations() - before, 1u);

  before = crowd::SharedRepo::auth_hash_invocations();
  c.explain(api_key_, "pdgeqrf", "tuning_parameters.mb >= 4");
  EXPECT_EQ(crowd::SharedRepo::auth_hash_invocations() - before, 1u);
}

TEST_F(NetTest, EmptyWhereReturnsWholeVisiblePartition) {
  start();
  CrowdClient c = client();
  c.upload(api_key_, "p1", {make_eval(1, 1.0), make_eval(2, 2.0)});
  c.upload(api_key_, "p2", {make_eval(3, 3.0)});
  EXPECT_EQ(c.query(api_key_, "p1", "").size(), 2u);
  EXPECT_EQ(c.query(api_key_, "p2", "").size(), 1u);
}

// ---------------------------------------------------------------------------
// Auth failures

TEST_F(NetTest, RejectsBadAndRevokedApiKeys) {
  start();
  CrowdClient c = client();
  try {
    c.upload("not-a-key", "pdgeqrf", {make_eval(1, 1.0)});
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Auth);
  }

  const std::string revoked = repo_->issue_api_key("alice");
  ASSERT_TRUE(repo_->revoke_api_key(revoked));
  try {
    c.query(revoked, "pdgeqrf", "");
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Auth);
  }

  // Auth errors keep the connection usable.
  EXPECT_EQ(c.health().at("status").as_string(), "ok");
  expect_alive();
}

TEST_F(NetTest, MissingApiKeyIsAuthError) {
  start();
  Socket sock = raw_connect();
  Json req = Json::object();
  req["op"] = "upload";
  const std::string frame = encode_frame(req);
  ASSERT_EQ(sock.send_all(frame.data(), frame.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "auth");
  expect_alive();
}

// ---------------------------------------------------------------------------
// Malformed frames

TEST_F(NetTest, BadMagicGetsBadFrameAndClose) {
  start();
  Socket sock = raw_connect();
  std::string header = encode_header(0);
  header[0] = 'X';  // corrupt the magic
  ASSERT_EQ(sock.send_all(header.data(), header.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "bad_frame");
  // Framing errors close the connection: the next read sees EOF.
  char byte = 0;
  EXPECT_EQ(sock.recv_exact(&byte, 1), IoStatus::Eof);
  expect_alive();
}

TEST_F(NetTest, WrongVersionByteGetsBadVersionAndClose) {
  start();
  Socket sock = raw_connect();
  std::string header = encode_header(0);
  header[4] = 9;  // future protocol version
  ASSERT_EQ(sock.send_all(header.data(), header.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "bad_version");
  char byte = 0;
  EXPECT_EQ(sock.recv_exact(&byte, 1), IoStatus::Eof);
  expect_alive();
}

TEST_F(NetTest, ZeroDeclaredPayloadLengthIsBadFrame) {
  start();
  Socket sock = raw_connect();
  // A syntactically perfect header declaring an empty payload: no frame
  // carries an empty JSON document, so this must be rejected as malformed
  // rather than answered or silently skipped.
  const std::string header = encode_header(0);
  ASSERT_EQ(sock.send_all(header.data(), header.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "bad_frame");
  char byte = 0;
  EXPECT_EQ(sock.recv_exact(&byte, 1), IoStatus::Eof);
  expect_alive();
}

TEST_F(NetTest, NonzeroFlagsOrReservedBytesAreBadFrame) {
  start();
  for (std::size_t i = 5; i <= 7; ++i) {
    Socket sock = raw_connect();
    Json req = Json::object();
    req["op"] = "health";
    std::string frame = encode_frame(req);
    frame[i] = 1;
    ASSERT_EQ(sock.send_all(frame.data(), frame.size()), IoStatus::Ok);
    EXPECT_EQ(error_code_of(read_frame(sock)), "bad_frame") << "byte " << i;
  }
  expect_alive();
}

TEST_F(NetTest, HeaderBitFlipSweepNeverYieldsOk) {
  ServerOptions opts;
  opts.read_timeout_ms = 150;  // length-increasing flips end in a fast timeout
  start(opts);
  Json req = Json::object();
  req["op"] = "health";
  const std::string frame = encode_frame(req);
  // Deterministic single-bit corruption of every header byte: whatever the
  // flip hits — magic, version, flags, reserved, declared length — the
  // server must answer with a typed error, never treat the frame as valid.
  for (std::size_t byte = 0; byte < kHeaderSize; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Socket sock = raw_connect();
      std::string corrupted = frame;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      ASSERT_EQ(sock.send_all(corrupted.data(), corrupted.size()),
                IoStatus::Ok);
      EXPECT_FALSE(read_frame(sock).at("ok").as_bool())
          << "flipping byte " << byte << " bit " << bit
          << " must not yield a valid request";
    }
  }
  expect_alive();
}

TEST_F(NetTest, TruncatedHeaderThenCloseIsHarmless) {
  start();
  {
    Socket sock = raw_connect();
    const std::string header = encode_header(100);
    // Send 5 of the 12 header bytes, then vanish.
    ASSERT_EQ(sock.send_all(header.data(), 5), IoStatus::Ok);
  }
  expect_alive();
}

TEST_F(NetTest, TruncatedPayloadThenCloseIsHarmless) {
  start();
  {
    Socket sock = raw_connect();
    const std::string frame = encode_frame(Json::parse(R"({"op":"health"})"));
    // Full header, half the payload.
    ASSERT_EQ(sock.send_all(frame.data(), kHeaderSize + 3), IoStatus::Ok);
  }
  expect_alive();
}

TEST_F(NetTest, OversizedLengthGetsTooLargeAndClose) {
  ServerOptions opts;
  opts.max_request_bytes = 1024;
  start(opts);
  Socket sock = raw_connect();
  const std::string header = encode_header(10u << 20);  // 10 MiB declared
  ASSERT_EQ(sock.send_all(header.data(), header.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "too_large");
  char byte = 0;
  EXPECT_EQ(sock.recv_exact(&byte, 1), IoStatus::Eof);
  expect_alive();
}

TEST_F(NetTest, GarbageJsonGetsBadJsonAndKeepsConnection) {
  start();
  Socket sock = raw_connect();
  const std::string garbage = "{\"op\": \"heal";  // truncated JSON
  std::string frame = encode_header(static_cast<std::uint32_t>(garbage.size()));
  frame += garbage;
  ASSERT_EQ(sock.send_all(frame.data(), frame.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "bad_json");

  // The frame boundary was sound, so the same connection still serves.
  const std::string health = encode_frame(Json::parse(R"({"op":"health"})"));
  ASSERT_EQ(sock.send_all(health.data(), health.size()), IoStatus::Ok);
  const Json response = read_frame(sock);
  EXPECT_TRUE(response.at("ok").as_bool());
  expect_alive();
}

TEST_F(NetTest, NonObjectAndUnknownOpAreBadRequests) {
  start();
  Socket sock = raw_connect();
  const std::string arr = encode_frame(Json::parse("[1,2,3]"));
  ASSERT_EQ(sock.send_all(arr.data(), arr.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "bad_request");

  const std::string unknown = encode_frame(Json::parse(R"({"op":"launch"})"));
  ASSERT_EQ(sock.send_all(unknown.data(), unknown.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "bad_request");

  const std::string noop = encode_frame(Json::parse(R"({"problem":"x"})"));
  ASSERT_EQ(sock.send_all(noop.data(), noop.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "bad_request");
  expect_alive();
}

TEST_F(NetTest, BadWhereClauseIsBadRequest) {
  start();
  CrowdClient c = client();
  c.upload(api_key_, "pdgeqrf", {make_eval(1, 1.0)});
  try {
    c.query(api_key_, "pdgeqrf", "mb >=");  // parse error
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadRequest);
  }
  expect_alive();
}

// ---------------------------------------------------------------------------
// Timeouts and admission control

TEST_F(NetTest, StalledClientGetsTimeoutFrame) {
  ServerOptions opts;
  opts.read_timeout_ms = 200;
  start(opts);
  Socket sock = raw_connect();
  // Send nothing; the server's read deadline expires and it answers with
  // a typed timeout error before closing.
  EXPECT_EQ(error_code_of(read_frame(sock)), "timeout");
  char byte = 0;
  EXPECT_EQ(sock.recv_exact(&byte, 1), IoStatus::Eof);
  expect_alive();
}

TEST_F(NetTest, StalledMidFrameGetsTimeoutFrame) {
  ServerOptions opts;
  opts.read_timeout_ms = 200;
  start(opts);
  Socket sock = raw_connect();
  // Declare a 64-byte payload but never send it.
  const std::string header = encode_header(64);
  ASSERT_EQ(sock.send_all(header.data(), header.size()), IoStatus::Ok);
  EXPECT_EQ(error_code_of(read_frame(sock)), "timeout");
  expect_alive();
}

TEST_F(NetTest, AdmissionControlRejectsBeyondCap) {
  ServerOptions opts;
  opts.max_connections = 1;
  opts.workers = 1;
  start(opts);

  Socket first = raw_connect();
  // Prove the first connection is established and serving.
  const std::string health = encode_frame(Json::parse(R"({"op":"health"})"));
  ASSERT_EQ(first.send_all(health.data(), health.size()), IoStatus::Ok);
  EXPECT_TRUE(read_frame(first).at("ok").as_bool());

  // The second connection exceeds the cap: typed overloaded error, closed,
  // and the accept loop never blocked.
  Socket second = raw_connect();
  EXPECT_EQ(error_code_of(read_frame(second)), "overloaded");
  char byte = 0;
  EXPECT_EQ(second.recv_exact(&byte, 1), IoStatus::Eof);

  // The first connection is untouched.
  ASSERT_EQ(first.send_all(health.data(), health.size()), IoStatus::Ok);
  EXPECT_TRUE(read_frame(first).at("ok").as_bool());
}

TEST_F(NetTest, StopRefusesNewConnections) {
  start();
  expect_alive();
  server_->stop();
  EXPECT_THROW(CrowdClient("127.0.0.1", server_->port()), TransportError);
}

TEST_F(NetTest, UploadsAreDurableOnAck) {
  start();
  client().upload(api_key_, "pdgeqrf",
                  {make_eval(4, 1.5), make_eval(8, 2.5)});
  server_->stop();
  server_.reset();
  repo_.reset();  // destroy without explicit sync

  // Reopen the directory: the acked batch must have survived.
  db::engine::EngineOptions eo;
  eo.async_commit = true;
  crowd::SharedRepo reopened =
      crowd::SharedRepo::open_durable(dir_->path(), 7, eo);
  EXPECT_EQ(reopened.num_records("pdgeqrf"), 2u);
}

// ---------------------------------------------------------------------------
// Protocol helpers

TEST(Protocol, HeaderRoundTrip) {
  const std::string h = encode_header(0xA1B2C3u);
  ASSERT_EQ(h.size(), kHeaderSize);
  const DecodedHeader d = decode_header(h.data());
  EXPECT_FALSE(d.error.has_value());
  EXPECT_EQ(d.payload_size, 0xA1B2C3u);
}

TEST(Protocol, ErrorCodeNamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::BadFrame, ErrorCode::BadVersion, ErrorCode::TooLarge,
        ErrorCode::BadJson, ErrorCode::BadRequest, ErrorCode::Auth,
        ErrorCode::Overloaded, ErrorCode::Timeout, ErrorCode::ShuttingDown,
        ErrorCode::Internal}) {
    const auto parsed = parse_error_code(error_code_name(code));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(parse_error_code("no_such_code").has_value());
}

}  // namespace
}  // namespace gptc::net
