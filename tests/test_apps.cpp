// Tests of the application simulators: the synthetic functions and the
// PDGEQRF / NIMROD / SuperLU_DIST / Hypre performance models. These check
// the *mechanisms* the paper's experiments rely on (parameter effects,
// failure modes, task correlation), not absolute numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/hypre.hpp"
#include "apps/nimrod.hpp"
#include "apps/pdgeqrf.hpp"
#include "apps/superlu.hpp"
#include "apps/synthetic.hpp"

namespace gptc::apps {
namespace {

using space::Config;
using space::Value;

// ---------------------------------------------------------------------------
// Synthetic functions

TEST(Synthetic, DemoMatchesClosedForm) {
  // t = 0: y = 1 + e^{-(x+1)} cos(2 pi x) * sum_i sin(2 pi x 2^i).
  const double x = 0.3;
  double s = 0.0;
  for (int i = 1; i <= 3; ++i)
    s += std::sin(2.0 * M_PI * x * std::pow(2.0, i));
  const double expected =
      1.0 + std::exp(-(x + 1.0)) * std::cos(2.0 * M_PI * x) * s;
  EXPECT_NEAR(demo_function(0.0, x), expected, 1e-12);
}

TEST(Synthetic, DemoProblemEvaluates) {
  const auto p = make_demo_problem();
  EXPECT_EQ(p.task_space.dim(), 1u);
  EXPECT_EQ(p.param_space.dim(), 1u);
  const double y = p.objective({Value(1.0)}, {Value(0.25)});
  EXPECT_NEAR(y, demo_function(1.0, 0.25), 1e-12);
}

TEST(Synthetic, BraninStandardMinimum) {
  // Branin's three global minima have value ~0.397887 at the standard
  // constants.
  const auto task = branin_standard_task();
  const auto p = make_branin_problem();
  const double at_min =
      p.objective(task, {Value(M_PI), Value(2.275)});
  EXPECT_NEAR(at_min, 0.397887, 1e-4);
  const double elsewhere = p.objective(task, {Value(-3.0), Value(14.0)});
  EXPECT_GT(elsewhere, at_min + 1.0);
}

TEST(Synthetic, BraninTasksAreCorrelated) {
  // Nearby tasks should rank configurations similarly: evaluate two
  // configurations under two nearby tasks and expect consistent ordering.
  const auto p = make_branin_problem();
  rng::Rng rng(3);
  const Config t1 = branin_standard_task();
  Config t2 = t1;
  t2[4] = Value(t1[4].as_double() * 1.1);  // perturb s
  const Config good = {Value(M_PI), Value(2.275)};
  const Config bad = {Value(-4.5), Value(0.5)};
  EXPECT_LT(p.objective(t1, good), p.objective(t1, bad));
  EXPECT_LT(p.objective(t2, good), p.objective(t2, bad));
}

// ---------------------------------------------------------------------------
// PDGEQRF

class PdgeqrfTest : public ::testing::Test {
 protected:
  hpcsim::MachineModel hsw_ = hpcsim::MachineModel::cori_haswell();
  PdgeqrfConfig base_;  // mb=4 nb=4 lg2npernode=5 p=16
};

TEST_F(PdgeqrfTest, RuntimePositiveAndFinite) {
  const double t = pdgeqrf_time(hsw_, 8, 10000, 10000, base_, 1);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, 0.0);
}

TEST_F(PdgeqrfTest, LargerMatricesTakeLonger) {
  EXPECT_LT(pdgeqrf_time(hsw_, 8, 6000, 6000, base_, 1),
            pdgeqrf_time(hsw_, 8, 10000, 10000, base_, 1));
}

TEST_F(PdgeqrfTest, TinyBlocksAreSlow) {
  PdgeqrfConfig tiny = base_;
  tiny.nb = 1;
  EXPECT_GT(pdgeqrf_time(hsw_, 8, 10000, 10000, tiny, 1),
            pdgeqrf_time(hsw_, 8, 10000, 10000, base_, 1));
}

TEST_F(PdgeqrfTest, ExtremeGridsAreSlow) {
  PdgeqrfConfig row = base_, col = base_;
  row.p = 1;    // 1 x 256: no panel parallelism
  col.p = 255;  // 255 x 1: no update parallelism
  const double mid = pdgeqrf_time(hsw_, 8, 10000, 10000, base_, 1);
  EXPECT_GT(pdgeqrf_time(hsw_, 8, 10000, 10000, row, 1), mid);
  EXPECT_GT(pdgeqrf_time(hsw_, 8, 10000, 10000, col, 1), mid);
}

TEST_F(PdgeqrfTest, OutOfMemoryFails) {
  PdgeqrfConfig solo = base_;
  solo.lg2npernode = 0;  // a single rank owns the whole node's 128 GB
  solo.p = 1;
  // 150k x 150k doubles = 180 GB on a 128 GB node: must fail.
  const double t = pdgeqrf_time(hsw_, 1, 150000, 150000, solo, 1);
  EXPECT_TRUE(std::isnan(t));
  // The same matrix spread over 8 nodes fits.
  PdgeqrfConfig spread = base_;
  EXPECT_TRUE(std::isfinite(pdgeqrf_time(hsw_, 8, 150000, 150000, spread, 1)));
}

TEST_F(PdgeqrfTest, DeterministicAndNoisy) {
  const double a = pdgeqrf_time(hsw_, 8, 10000, 10000, base_, 1);
  EXPECT_DOUBLE_EQ(a, pdgeqrf_time(hsw_, 8, 10000, 10000, base_, 1));
  EXPECT_NE(a, pdgeqrf_time(hsw_, 8, 10000, 10000, base_, 99));
}

TEST_F(PdgeqrfTest, InvalidConfigThrows) {
  PdgeqrfConfig bad = base_;
  bad.mb = 0;
  EXPECT_THROW(pdgeqrf_time(hsw_, 8, 100, 100, bad, 1),
               std::invalid_argument);
  EXPECT_THROW(pdgeqrf_time(hsw_, 8, 0, 100, base_, 1),
               std::invalid_argument);
}

TEST_F(PdgeqrfTest, ProblemSpaceMatchesTableII) {
  const auto p = make_pdgeqrf_problem(hsw_, 8);
  ASSERT_EQ(p.param_space.dim(), 4u);
  EXPECT_EQ(p.param_space[0].name(), "mb");
  EXPECT_EQ(p.param_space[1].name(), "nb");
  EXPECT_EQ(p.param_space[2].name(), "lg2npernode");
  EXPECT_EQ(p.param_space[3].name(), "p");
  // mb, nb in [1, 16); lg2npernode in [0, 5) on 32-core nodes; p in
  // [1, 256) on 8 nodes.
  EXPECT_EQ(p.param_space[0].cardinality(), 15u);
  EXPECT_EQ(p.param_space[2].cardinality(), 5u);
  EXPECT_EQ(p.param_space[3].cardinality(), 255u);
  const double y = p.objective({Value(std::int64_t{10000}),
                                Value(std::int64_t{10000})},
                               {Value(std::int64_t{4}), Value(std::int64_t{4}),
                                Value(std::int64_t{5}), Value(std::int64_t{16})});
  EXPECT_TRUE(std::isfinite(y));
}

// ---------------------------------------------------------------------------
// SuperLU_DIST

class SuperluTest : public ::testing::Test {
 protected:
  SuperluTest()
      : alloc_{hpcsim::MachineModel::cori_haswell(), 4, 32},
        sim_(sparse::parsec_like(400, 12, 1.0, 9), 7) {}

  hpcsim::Allocation alloc_;
  SuperluDistSim sim_;
  SuperluConfig base_;
};

TEST_F(SuperluTest, OrderingQualityShowsInRuntime) {
  SuperluConfig nat = base_, md = base_;
  nat.colperm = "NATURAL";
  md.colperm = "MMD_AT_PLUS_A";
  EXPECT_LT(sim_.factor_time(md, alloc_), sim_.factor_time(nat, alloc_));
}

TEST_F(SuperluTest, SymbolicCacheSharesMmdAndMetis) {
  // METIS maps to the same canonical ordering as MMD: identical symbolic.
  EXPECT_EQ(&sim_.symbolic("MMD_AT_PLUS_A"), &sim_.symbolic("METIS_AT_PLUS_A"));
  EXPECT_NE(&sim_.symbolic("MMD_AT_PLUS_A"), &sim_.symbolic("NATURAL"));
}

TEST_F(SuperluTest, GridShapeHasInteriorOptimum) {
  const auto time_at = [&](int nprows) {
    SuperluConfig c = base_;
    c.nprows = nprows;
    return sim_.factor_time(c, alloc_);
  };
  const double flat = time_at(1);
  const double mid = time_at(8);
  const double tall = time_at(128);
  EXPECT_LT(mid, flat);
  EXPECT_LT(mid, tall);
}

TEST_F(SuperluTest, SolveTimeScalesWithFill) {
  SuperluConfig nat = base_, md = base_;
  nat.colperm = "NATURAL";
  md.colperm = "MMD_AT_PLUS_A";
  EXPECT_LT(sim_.solve_time(md, alloc_), sim_.solve_time(nat, alloc_));
}

TEST_F(SuperluTest, MemoryGrowsWithLookaheadAndShrinksWithRanks) {
  SuperluConfig deep = base_;
  deep.lookahead = 19;
  EXPECT_GT(sim_.memory_per_rank(deep, 16), sim_.memory_per_rank(base_, 16));
  EXPECT_GT(sim_.memory_per_rank(base_, 4), sim_.memory_per_rank(base_, 64));
}

TEST_F(SuperluTest, InvalidConfigThrows) {
  SuperluConfig bad = base_;
  bad.nsup = 0;
  EXPECT_THROW(sim_.factor_time(bad, alloc_), std::invalid_argument);
  bad = base_;
  bad.colperm = "BOGUS";
  EXPECT_THROW(sim_.factor_time(bad, alloc_), std::invalid_argument);
}

TEST_F(SuperluTest, ProblemEvaluatesBothMatrices) {
  const auto p = make_superlu_problem(alloc_, 7);
  EXPECT_EQ(p.param_space.dim(), 5u);
  const Config params = {Value("MMD_AT_PLUS_A"), Value(std::int64_t{10}),
                         Value(std::int64_t{8}), Value(std::int64_t{128}),
                         Value(std::int64_t{20})};
  const double si = p.objective({Value("si5h12")}, params);
  const double h2o = p.objective({Value("h2o")}, params);
  EXPECT_TRUE(std::isfinite(si));
  EXPECT_TRUE(std::isfinite(h2o));
  EXPECT_GT(h2o, si);  // larger matrix, same density family
}

// ---------------------------------------------------------------------------
// NIMROD

class NimrodTest : public ::testing::Test {
 protected:
  hpcsim::MachineModel hsw_ = hpcsim::MachineModel::cori_haswell();
  NimrodTask small_{5, 7, 1};
  NimrodConfig base_;
};

TEST_F(NimrodTest, TaskHelpers) {
  EXPECT_EQ(small_.mesh_x(), 32);
  EXPECT_EQ(small_.mesh_y(), 128);
  EXPECT_EQ(small_.fourier_modes(), 1);  // floor(2/3) + 1
  NimrodTask t{5, 7, 3};
  EXPECT_EQ(t.fourier_modes(), 3);  // floor(8/3) + 1
}

TEST_F(NimrodTest, MoreNodesRunFaster) {
  NimrodSim sim32(hsw_, 32), sim64(hsw_, 64);
  EXPECT_GT(sim32.run_time(small_, base_), sim64.run_time(small_, base_));
}

TEST_F(NimrodTest, BiggerProblemRunsLonger) {
  NimrodSim sim(hsw_, 64);
  NimrodTask big{6, 8, 1};
  EXPECT_GT(sim.run_time(big, base_), sim.run_time(small_, base_));
}

TEST_F(NimrodTest, NpzTradesCommForMemoryAndFailsWhenTooDeep) {
  NimrodSim sim(hsw_, 64);
  NimrodTask big{6, 8, 1};
  NimrodConfig shallow = base_, mid = base_, deep = base_;
  shallow.npz = 0;
  mid.npz = 2;
  deep.npz = 4;
  const double t0 = sim.run_time(big, shallow);
  const double t2 = sim.run_time(big, mid);
  EXPECT_LT(t2, t0);  // communication avoidance pays off...
  EXPECT_TRUE(std::isnan(sim.run_time(big, deep)));  // ...until OOM
  // The small problem survives deep replication.
  EXPECT_TRUE(std::isfinite(sim.run_time(small_, deep)));
}

TEST_F(NimrodTest, KnlIsSlowerPerNodeHere) {
  NimrodSim hsw(hsw_, 32);
  NimrodSim knl(hpcsim::MachineModel::cori_knl(), 32);
  // Weak KNL cores hurt the latency-sensitive solver phases at this scale.
  EXPECT_GT(knl.run_time(small_, base_), hsw.run_time(small_, base_));
}

TEST_F(NimrodTest, ProblemSpaceMatchesTableIII) {
  const auto p = make_nimrod_problem(hsw_, 32);
  ASSERT_EQ(p.param_space.dim(), 5u);
  EXPECT_EQ(p.param_space[0].name(), "NSUP");
  EXPECT_EQ(p.param_space[4].name(), "npz");
  EXPECT_EQ(p.param_space[0].cardinality(), 270u);  // [30, 300)
  EXPECT_EQ(p.param_space[4].cardinality(), 5u);    // [0, 5)
  const double y = p.objective(
      {Value(std::int64_t{5}), Value(std::int64_t{7}), Value(std::int64_t{1})},
      {Value(std::int64_t{128}), Value(std::int64_t{20}),
       Value(std::int64_t{1}), Value(std::int64_t{1}),
       Value(std::int64_t{1})});
  EXPECT_TRUE(std::isfinite(y));
}

// ---------------------------------------------------------------------------
// Hypre

class HypreTest : public ::testing::Test {
 protected:
  hpcsim::MachineModel hsw_ = hpcsim::MachineModel::cori_haswell();
  HypreConfig base_;

  double time_of(const HypreConfig& c) {
    return hypre_time(hsw_, 100, 100, 100, c, 4);
  }
};

TEST_F(HypreTest, CategoricalTablesHaveTableVCounts) {
  EXPECT_EQ(hypre_coarsen_types().size(), 8u);
  EXPECT_EQ(hypre_relax_types().size(), 6u);
  EXPECT_EQ(hypre_smooth_types().size(), 5u);
  EXPECT_EQ(hypre_interp_types().size(), 7u);
}

TEST_F(HypreTest, HeavySmoothersOnManyLevelsCostMore) {
  HypreConfig cheap = base_, heavy = base_;
  heavy.smooth_type = "Schwarz";
  heavy.smooth_num_levels = 4;
  EXPECT_GT(time_of(heavy), 2.0 * time_of(cheap));
}

TEST_F(HypreTest, AggressiveCoarseningCutsSmoothedHierarchyCost) {
  HypreConfig smoothed = base_;
  smoothed.smooth_type = "Schwarz";
  smoothed.smooth_num_levels = 4;
  HypreConfig agg = smoothed;
  agg.agg_num_levels = 3;
  EXPECT_LT(time_of(agg), time_of(smoothed));
}

TEST_F(HypreTest, ProcessCountSaturates) {
  HypreConfig p1 = base_, p8 = base_, p31 = base_;
  p1.nproc = 1;
  p8.nproc = 8;
  p31.nproc = 31;
  const double t1 = time_of(p1), t8 = time_of(p8), t31 = time_of(p31);
  EXPECT_GT(t1, t8);                 // parallelism helps at first...
  EXPECT_GT(t8 / t31, 0.6);          // ...then bandwidth saturates
}

TEST_F(HypreTest, YSplitCostsMoreThanXSplit) {
  HypreConfig xsplit = base_, ysplit = base_;
  xsplit.px = 16;
  xsplit.py = 1;
  xsplit.nproc = 16;
  ysplit.px = 1;
  ysplit.py = 16;
  ysplit.nproc = 16;
  EXPECT_GT(time_of(ysplit), time_of(xsplit));
}

TEST_F(HypreTest, UnknownCategoricalsThrow) {
  HypreConfig bad = base_;
  bad.coarsen_type = "BOGUS";
  EXPECT_THROW(time_of(bad), std::invalid_argument);
  bad = base_;
  bad.smooth_type = "BOGUS";
  EXPECT_THROW(time_of(bad), std::invalid_argument);
}

TEST_F(HypreTest, ProblemSpaceMatchesTableV) {
  const auto p = make_hypre_problem(hsw_);
  ASSERT_EQ(p.param_space.dim(), 12u);
  EXPECT_EQ(p.param_space[0].name(), "Px");
  EXPECT_EQ(p.param_space[8].name(), "smooth_type");
  EXPECT_EQ(p.param_space[11].name(), "agg_num_levels");
  rng::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const double y = p.objective({Value(std::int64_t{100}),
                                  Value(std::int64_t{100}),
                                  Value(std::int64_t{100})},
                                 p.param_space.sample(rng));
    EXPECT_TRUE(std::isfinite(y));
    EXPECT_GT(y, 0.0);
  }
}

}  // namespace
}  // namespace gptc::apps
