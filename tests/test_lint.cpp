// Tests for gptc-lint (tools/lint/): each determinism rule must be caught
// on its seeded fixture with the exact file:line, the clean fixtures must
// pass, and the repo's own src/ tree must lint clean — the same invocations
// the `lint` target and the lint_* ctest entries run. The cross-file rules
// R6–R9 are exercised in `--cross-file` mode, including the per-file-mode
// blindness they were built to close, plus the JSON/SARIF emitters and the
// baseline write/suppress/expire round-trip.
//
// The binary path and fixture directory are injected by tests/CMakeLists.txt
// as GPTC_LINT_BIN / GPTC_LINT_FIXTURES.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

/// Runs a shell command, capturing combined output and the exit status.
RunResult run(const std::string& command) {
  RunResult r;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) r.output.append(buf, got);
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(GPTC_LINT_FIXTURES) + "/" + name;
}

std::string lint_cmd(const std::string& args) {
  return std::string(GPTC_LINT_BIN) + " " + args;
}

/// Asserts the linter flags exactly `path:line: [rule]` on the fixture.
void expect_violation(const std::string& name, int line,
                      const std::string& rule) {
  const std::string path = fixture(name);
  const RunResult r = run(lint_cmd(path));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string expected =
      path + ":" + std::to_string(line) + ": [" + rule + "]";
  EXPECT_NE(r.output.find(expected), std::string::npos)
      << "expected '" << expected << "' in:\n"
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, R1CatchesCPrng) { expect_violation("r1_c_prng.cpp", 7, "R1"); }

TEST(Lint, R2CatchesUnorderedIteration) {
  expect_violation("r2_unordered_iter.cpp", 9, "R2");
}

TEST(Lint, R3CatchesUnindexedCaptureWrite) {
  expect_violation("r3_capture_write.cpp", 10, "R3");
}

TEST(Lint, R4CatchesObjectiveInParallelLayer) {
  expect_violation("src/parallel/r4_objective_call.cpp", 10, "R4");
}

TEST(Lint, R5CatchesFloatReduction) {
  expect_violation("r5_float_reduction.cpp", 10, "R5");
}

TEST(Lint, CleanFilePasses) {
  const RunResult r = run(lint_cmd(fixture("clean_patterns.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, FixtureTreeYieldsExactlyOneFindingPerRule) {
  const RunResult r = run(lint_cmd(std::string(GPTC_LINT_FIXTURES)));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("5 finding(s)"), std::string::npos) << r.output;
  for (const char* rule : {"[R1]", "[R2]", "[R3]", "[R4]", "[R5]"})
    EXPECT_NE(r.output.find(rule), std::string::npos)
        << "missing " << rule << " in:\n"
        << r.output;
}

TEST(Lint, CleanEngineIndexFixturePasses) {
  // Ordered std::map iteration — the storage-engine index idiom — is
  // deterministic and must not be confused with R2's unordered targets.
  const RunResult r = run(lint_cmd(fixture("clean_engine_index.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, RepoSourcesAreClean) {
  const RunResult r = run(lint_cmd(GPTC_LINT_SRC_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, EngineSourcesAreClean) {
  // The storage engine is scanned on its own as well (the `lint_engine`
  // ctest entry), so a regression there is named directly.
  const RunResult r = run(lint_cmd(GPTC_LINT_ENGINE_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, ListRulesDescribesAllThirteen) {
  const RunResult r = run(lint_cmd("--list-rules"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule : {"R1 ", "R2 ", "R3 ", "R4 ", "R5 ", "R6 ", "R7 ",
                           "R8 ", "R9 ", "R10 ", "R11 ", "R12 ", "R13 "})
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
}

TEST(Lint, MissingInputIsAUsageError) {
  const RunResult r = run(lint_cmd(fixture("does_not_exist.cpp")));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// --- cross-file mode (R6–R9) ------------------------------------------------

/// Asserts `--cross-file <args>` reports no findings.
void expect_cross_clean(const std::string& args) {
  const RunResult r = run(lint_cmd("--cross-file " + args));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

/// Asserts `--cross-file <args>` flags exactly `path:line: [rule]`.
void expect_cross_violation(const std::string& args, const std::string& name,
                            int line, const std::string& rule) {
  const RunResult r = run(lint_cmd("--cross-file " + args));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string expected =
      fixture(name) + ":" + std::to_string(line) + ": [" + rule + "]";
  EXPECT_NE(r.output.find(expected), std::string::npos)
      << "expected '" << expected << "' in:\n"
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(LintCross, R6CatchesCrossTuUnorderedIteration) {
  // The member is declared in the header, iterated in the other TU.
  expect_cross_violation(
      fixture("r6_registry.hpp") + " " + fixture("r6_cross_iter.cpp"),
      "r6_cross_iter.cpp", 10, "R6");
}

TEST(LintCross, R6ViolationIsInvisibleToPerFileMode) {
  // The same pair in per-file mode: neither file alone shows the unordered
  // declaration AND the iteration — the exact gap R6 closes.
  const RunResult r = run(lint_cmd(fixture("r6_registry.hpp") + " " +
                                   fixture("r6_cross_iter.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(LintCross, R7CatchesLockOrderInversion) {
  expect_cross_violation(fixture("r7_lock_inversion.cpp"),
                         "r7_lock_inversion.cpp", 19, "R7");
}

TEST(LintCross, R7CatchesInversionThroughByReferenceMutexes) {
  // The helper locks its two reference parameters in positional order; the
  // callers pass the same member mutexes in opposite orders. The finding
  // anchors at the call site that gives the placeholder locks their real
  // identities, and the report names the substituted pair.
  expect_cross_violation(fixture("r7_ref_param_inversion.cpp"),
                         "r7_ref_param_inversion.cpp", 27, "R7");
  const RunResult r = run(
      lint_cmd("--cross-file " + fixture("r7_ref_param_inversion.cpp")));
  EXPECT_NE(r.output.find("'RefInverted::a_'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'RefInverted::b_'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("pair_step"), std::string::npos) << r.output;
}

TEST(LintCross, ByReferenceHelperSharedByOneOrderIsClean) {
  // The same helper shape with both callers agreeing on the order must not
  // be flagged: distinct call sites do not conflate into a false cycle.
  expect_cross_clean(fixture("clean_ref_param_order.cpp"));
}

TEST(LintCross, R8CatchesUnsyncedFileCreation) {
  // The engine-layer fixture directory holds the seeded violation and its
  // clean counterpart (fsync through a helper) — exactly one finding.
  expect_cross_violation(fixture("src/db/engine"),
                         "src/db/engine/r8_missing_sync.cpp", 10, "R8");
}

TEST(LintCross, R9CatchesThrowingThreadEntryPoint) {
  // pump_loop is flagged; the noexcept safe_loop launch on the next line
  // is not (the fixture run reports exactly one finding).
  expect_cross_violation(fixture("r9_thread_entry.cpp"),
                         "r9_thread_entry.cpp", 26, "R9");
}

TEST(LintCross, R9CatchesBareWalReplayApply) {
  expect_cross_violation(fixture("r9_replay_apply.cpp"),
                         "r9_replay_apply.cpp", 26, "R9");
}

TEST(LintCross, FixtureTreeYieldsExactlyOneFindingPerRule) {
  const RunResult r =
      run(lint_cmd("--cross-file " + std::string(GPTC_LINT_FIXTURES)));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // R1–R8, R10–R13 seed one finding each; R7 seeds a second (the
  // by-reference inversion) and R9 seeds two (thread entry + replay apply).
  EXPECT_NE(r.output.find("15 finding(s)"), std::string::npos) << r.output;
  for (const char* rule : {"[R1]", "[R2]", "[R3]", "[R4]", "[R5]", "[R6]",
                           "[R7]", "[R8]", "[R9]", "[R10]", "[R11]", "[R12]",
                           "[R13]"})
    EXPECT_NE(r.output.find(rule), std::string::npos)
        << "missing " << rule << " in:\n"
        << r.output;
}

TEST(LintCross, RepoSourcesAreCleanInCrossFileMode) {
  // The acceptance gate: the shipped tree passes the whole-program rules
  // (the seeded r7_lock_inversion fixture above proves the same invocation
  // does flag a real inversion).
  const RunResult r = run(lint_cmd("--cross-file " +
                                   std::string(GPTC_LINT_SRC_DIR)));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- guard analysis (R10/R11) ----------------------------------------------

TEST(LintGuard, R10CatchesUnguardedWrite) {
  // `total_` carries a guarded-by annotation; the write in racy_add holds
  // nothing. The locked_add sibling (same member, lock held) stays clean.
  expect_cross_violation(fixture("r10_guard.cpp"), "r10_guard.cpp", 24, "R10");
}

TEST(LintGuard, R11CatchesWriteUnderSharedLock) {
  // bump() writes stats_ while its shared_mutex is held only in shared
  // mode; the shared-mode read in snapshot_stats stays clean.
  expect_cross_violation(fixture("r11_shared_write.cpp"),
                         "r11_shared_write.cpp", 26, "R11");
}

TEST(LintGuard, SharedModeDisciplineIsClean) {
  // All four shared_mutex modes at once: read under shared_lock, write
  // under unique_lock, the upgrade path that releases its shared lock
  // before re-locking exclusively, and a deliberate unlocked read behind
  // an explicit escape comment — none may be flagged.
  expect_cross_clean(fixture("clean_guard_modes.cpp"));
}

TEST(LintGuard, GuardViolationsAreInvisibleToPerFileMode) {
  // Lock-set checking needs the ProjectIndex (annotations can live in a
  // different TU than the access): without --cross-file the seeded
  // violations must not fire.
  const RunResult r = run(lint_cmd(fixture("r10_guard.cpp") + " " +
                                   fixture("r11_shared_write.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(LintGuard, EscapeCommentIsLoadBearing) {
  // Strip the escape comment out of the clean fixture: the deliberate
  // unlocked read must then surface as R10 — proving the guard-ok line is
  // what suppresses it, not a blind spot.
  std::ifstream in(fixture("clean_guard_modes.cpp"));
  ASSERT_TRUE(in.is_open());
  const std::string stripped = "lint_guard_escape_stripped.cpp";
  {
    std::ofstream out(stripped);
    std::string line;
    while (std::getline(in, line))
      if (line.find("guard-ok") == std::string::npos) out << line << "\n";
  }
  const RunResult r = run(lint_cmd("--cross-file " + stripped));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[R10]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Registry::value_"), std::string::npos) << r.output;
  std::remove(stripped.c_str());
}

TEST(LintGuard, TextFormatEndsWithPerRuleSummary) {
  const RunResult r =
      run(lint_cmd("--cross-file " + fixture("r10_guard.cpp") + " " +
                   fixture("r11_shared_write.cpp")));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("rule summary:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("R10=1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("R11=1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("R1=0"), std::string::npos) << r.output;
}

// --- interprocedural dataflow (R12/R13) -------------------------------------

TEST(LintDataflow, R12CatchesTaintThroughOneCallHop) {
  // recv_exact taints the header in handle(); the undefined decode_len
  // passes it through; grow()'s summary carries it into v.resize — the
  // finding lands on the call site that lets untrusted data in.
  expect_cross_violation(fixture("r12_taint_resize.cpp"),
                         "r12_taint_resize.cpp", 20, "R12");
}

TEST(LintDataflow, SanitizedAndAnnotatedTaintFlowsAreClean) {
  expect_cross_clean(fixture("r12_sanitized_clean.cpp"));
}

TEST(LintDataflow, TaintOkCommentIsLoadBearing) {
  // Strip the taint-ok annotation out of the clean fixture: the annotated
  // resize must then surface as R12 — the escape is what suppresses it.
  std::ifstream in(fixture("r12_sanitized_clean.cpp"));
  ASSERT_TRUE(in.is_open());
  const std::string stripped = "lint_taint_escape_stripped.cpp";
  {
    std::ofstream out(stripped);
    std::string line;
    while (std::getline(in, line))
      if (line.find("taint-ok") == std::string::npos) out << line << "\n";
  }
  const RunResult r = run(lint_cmd("--cross-file " + stripped));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[R12]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("handle_annotated"), std::string::npos) << r.output;
  std::remove(stripped.c_str());
}

TEST(LintDataflow, R13CatchesFsyncUnderDeclaredGuard) {
  expect_cross_violation(fixture("r13_fsync_under_lock.cpp"),
                         "r13_fsync_under_lock.cpp", 12, "R13");
}

TEST(LintDataflow, UnlockBeforeFsyncIsClean) {
  expect_cross_clean(fixture("r13_clean_unlock_first.cpp"));
}

TEST(LintDataflow, MovingFsyncInsideLockScopeRefires) {
  // The mutation the rule exists to catch: swap the scope-closing brace
  // with the fsync line, pulling the syscall inside the critical section.
  std::ifstream in(fixture("r13_clean_unlock_first.cpp"));
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::size_t brace = 0, fsync = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i] == "    }") brace = i;
    if (lines[i] == "    ::fsync(fd_);") fsync = i;
  }
  ASSERT_NE(brace, 0u);
  ASSERT_EQ(fsync, brace + 1);
  std::swap(lines[brace], lines[fsync]);
  const std::string mutated = "lint_fsync_moved_inside.cpp";
  {
    std::ofstream out(mutated);
    for (const std::string& l : lines) out << l << "\n";
  }
  const RunResult r = run(lint_cmd("--cross-file " + mutated));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[R13]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Journal::mu_"), std::string::npos) << r.output;
  std::remove(mutated.c_str());
}

TEST(LintDataflow, DataflowViolationsAreInvisibleToPerFileMode) {
  // Both seeds need the whole-program walk: without --cross-file there is
  // no call graph, no taint propagation and no held-lock context.
  const RunResult r = run(lint_cmd(fixture("r12_taint_resize.cpp") + " " +
                                   fixture("r13_fsync_under_lock.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(LintDataflow, DeletingServerBoundsCheckRefiresTaint) {
  // The acceptance mutation: the shipped serve_connection is provably
  // bounded (control), and deleting its max_request_bytes comparison
  // re-opens the wire-to-allocation flow as an R12 finding.
  std::ifstream in(std::string(GPTC_LINT_SRC_DIR) + "/net/server.cpp");
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  const std::string control = "lint_server_control.cpp";
  {
    std::ofstream out(control);
    for (const std::string& l : lines) out << l << "\n";
  }
  RunResult r = run(lint_cmd("--cross-file " + control));
  EXPECT_EQ(r.exit_code, 0) << r.output;

  // Delete the bounds-check block (the `if (...) { ... }` that compares
  // the declared payload size against max_request_bytes).
  std::size_t begin = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("h.payload_size > opts_.max_request_bytes") !=
        std::string::npos) {
      begin = i;
      break;
    }
  }
  ASSERT_LT(begin, lines.size());
  std::size_t close = begin;
  while (close < lines.size() && lines[close] != "      }") ++close;
  ASSERT_LT(close, lines.size());
  const std::string mutated = "lint_server_unbounded.cpp";
  {
    std::ofstream out(mutated);
    for (std::size_t i = 0; i < lines.size(); ++i)
      if (i < begin || i > close) out << lines[i] << "\n";
  }
  r = run(lint_cmd("--cross-file " + mutated));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[R12]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("body.assign"), std::string::npos) << r.output;
  std::remove(control.c_str());
  std::remove(mutated.c_str());
}

// --- output formats and baseline -------------------------------------------

TEST(LintOutput, RepeatedInputsAreDeduplicatedAndSorted) {
  // The same directory twice: findings must not double up, and the output
  // must be ordered by path so invocation order never changes the report.
  const std::string dir(GPTC_LINT_FIXTURES);
  const RunResult r = run(lint_cmd(dir + " " + dir));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("5 finding(s)"), std::string::npos) << r.output;
  const auto p1 = r.output.find("r1_c_prng");
  const auto p2 = r.output.find("r2_unordered_iter");
  const auto p3 = r.output.find("r3_capture_write");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
}

TEST(LintOutput, JsonFormatCarriesFindingsAndFileCount) {
  const RunResult r =
      run(lint_cmd("--format=json " + fixture("r1_c_prng.cpp")));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"files_scanned\": 1"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"rule\": \"R1\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"line\": 7"), std::string::npos) << r.output;
}

TEST(LintOutput, JsonFormatEmptyFindingsIsValid) {
  const RunResult r =
      run(lint_cmd("--format=json " + fixture("clean_patterns.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"findings\": []"), std::string::npos) << r.output;
}

TEST(LintOutput, SarifFormatIsSchemaTagged) {
  const RunResult r =
      run(lint_cmd("--format=sarif " + fixture("r1_c_prng.cpp")));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"version\": \"2.1.0\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("sarif-2.1.0.json"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"name\": \"gptc-lint\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"ruleId\": \"R1\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"startLine\": 7"), std::string::npos) << r.output;
}

TEST(LintOutput, UnknownFormatIsAUsageError) {
  const RunResult r =
      run(lint_cmd("--format=xml " + fixture("r1_c_prng.cpp")));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(LintBaseline, WriteSuppressExpireRoundTrip) {
  const std::string baseline = "lint_test_baseline.json";
  // 1. Write: capture the seeded R1 finding as the baseline.
  RunResult r = run(lint_cmd("--write-baseline " + baseline + " " +
                             fixture("r1_c_prng.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // 2. Suppress: the same invocation with the baseline applied is clean.
  r = run(lint_cmd("--baseline " + baseline + " " + fixture("r1_c_prng.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("stale"), std::string::npos) << r.output;
  // 3. Expire: against a clean file the entry matches nothing — the run
  //    stays green but names the stale entry so the baseline shrinks.
  r = run(lint_cmd("--baseline " + baseline + " " +
                   fixture("clean_patterns.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("stale baseline entry"), std::string::npos)
      << r.output;
  std::remove(baseline.c_str());
}

TEST(LintBaseline, NonBaselinedFindingStillFails) {
  const std::string baseline = "lint_test_baseline2.json";
  RunResult r = run(lint_cmd("--write-baseline " + baseline + " " +
                             fixture("r1_c_prng.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // A different rule's finding is not covered by the R1 baseline.
  r = run(lint_cmd("--baseline " + baseline + " " + fixture("r1_c_prng.cpp") +
                   " " + fixture("r2_unordered_iter.cpp")));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[R2]"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("[R1]"), std::string::npos) << r.output;
  std::remove(baseline.c_str());
}

TEST(LintBaseline, StrictModeTurnsStaleEntriesFatal) {
  const std::string baseline = "lint_test_baseline_strict.json";
  RunResult r = run(lint_cmd("--write-baseline " + baseline + " " +
                             fixture("r1_c_prng.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Against a clean file the entry is stale: advisory by default...
  r = run(lint_cmd("--baseline " + baseline + " " +
                   fixture("clean_patterns.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // ...but fatal under --baseline-strict, so dead suppressions cannot
  // accumulate in the checked-in file.
  r = run(lint_cmd("--baseline " + baseline + " --baseline-strict " +
                   fixture("clean_patterns.cpp")));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("fatal under --baseline-strict"), std::string::npos)
      << r.output;
  // A live (matching) baseline stays green even in strict mode.
  r = run(lint_cmd("--baseline " + baseline + " --baseline-strict " +
                   fixture("r1_c_prng.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::remove(baseline.c_str());
}

TEST(LintBaseline, MalformedBaselineIsAUsageError) {
  const std::string baseline = "lint_test_baseline3.json";
  {
    std::ofstream out(baseline);
    out << "{\"findings\": [{\"path\": \"x\"";  // truncated JSON
  }
  const RunResult r = run(lint_cmd("--baseline " + baseline + " " +
                                   fixture("clean_patterns.cpp")));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  std::remove(baseline.c_str());
}

}  // namespace
