// Tests for gptc-lint (tools/lint/): each of the five determinism rules
// R1–R5 must be caught on its seeded fixture with the exact file:line, the
// clean fixture (indexed writes, annotated unordered iteration, forbidden
// names inside strings/comments) must pass, and the repo's own src/ tree
// must lint clean — the same invocation the `lint` target and the
// `lint_src` ctest entry run.
//
// The binary path and fixture directory are injected by tests/CMakeLists.txt
// as GPTC_LINT_BIN / GPTC_LINT_FIXTURES.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

/// Runs a shell command, capturing combined output and the exit status.
RunResult run(const std::string& command) {
  RunResult r;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) r.output.append(buf, got);
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(GPTC_LINT_FIXTURES) + "/" + name;
}

std::string lint_cmd(const std::string& args) {
  return std::string(GPTC_LINT_BIN) + " " + args;
}

/// Asserts the linter flags exactly `path:line: [rule]` on the fixture.
void expect_violation(const std::string& name, int line,
                      const std::string& rule) {
  const std::string path = fixture(name);
  const RunResult r = run(lint_cmd(path));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string expected =
      path + ":" + std::to_string(line) + ": [" + rule + "]";
  EXPECT_NE(r.output.find(expected), std::string::npos)
      << "expected '" << expected << "' in:\n"
      << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, R1CatchesCPrng) { expect_violation("r1_c_prng.cpp", 7, "R1"); }

TEST(Lint, R2CatchesUnorderedIteration) {
  expect_violation("r2_unordered_iter.cpp", 9, "R2");
}

TEST(Lint, R3CatchesUnindexedCaptureWrite) {
  expect_violation("r3_capture_write.cpp", 10, "R3");
}

TEST(Lint, R4CatchesObjectiveInParallelLayer) {
  expect_violation("src/parallel/r4_objective_call.cpp", 10, "R4");
}

TEST(Lint, R5CatchesFloatReduction) {
  expect_violation("r5_float_reduction.cpp", 10, "R5");
}

TEST(Lint, CleanFilePasses) {
  const RunResult r = run(lint_cmd(fixture("clean_patterns.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, FixtureTreeYieldsExactlyOneFindingPerRule) {
  const RunResult r = run(lint_cmd(std::string(GPTC_LINT_FIXTURES)));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("5 finding(s)"), std::string::npos) << r.output;
  for (const char* rule : {"[R1]", "[R2]", "[R3]", "[R4]", "[R5]"})
    EXPECT_NE(r.output.find(rule), std::string::npos)
        << "missing " << rule << " in:\n"
        << r.output;
}

TEST(Lint, CleanEngineIndexFixturePasses) {
  // Ordered std::map iteration — the storage-engine index idiom — is
  // deterministic and must not be confused with R2's unordered targets.
  const RunResult r = run(lint_cmd(fixture("clean_engine_index.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(Lint, RepoSourcesAreClean) {
  const RunResult r = run(lint_cmd(GPTC_LINT_SRC_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, EngineSourcesAreClean) {
  // The storage engine is scanned on its own as well (the `lint_engine`
  // ctest entry), so a regression there is named directly.
  const RunResult r = run(lint_cmd(GPTC_LINT_ENGINE_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, ListRulesDescribesAllFive) {
  const RunResult r = run(lint_cmd("--list-rules"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule : {"R1 ", "R2 ", "R3 ", "R4 ", "R5 "})
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
}

TEST(Lint, MissingInputIsAUsageError) {
  const RunResult r = run(lint_cmd(fixture("does_not_exist.cpp")));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

}  // namespace
